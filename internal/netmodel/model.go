// Package netmodel is the ground-truth network substrate: it assigns
// latency and loss to every host pair from the AS topology, injects the
// congestion and failure conditions that make overlay relaying worthwhile
// (Section 3.3 of the paper), provides a King-style measurement prober
// with noise and non-response, and implements the ITU-T G.107 E-Model for
// MOS speech-quality scoring (Section 7.2).
//
// Everything a protocol actor may legitimately observe goes through
// Prober; the Model itself is the omniscient view reserved for scoring.
package netmodel

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"asap/internal/asgraph"
	"asap/internal/cluster"
	"asap/internal/sim"
)

// Condition describes an injected AS impairment.
type Condition struct {
	// ExtraOneWay is added to the one-way delay of every path transiting
	// the AS.
	ExtraOneWay time.Duration
	// LossRate is the additional packet loss rate contributed by the AS,
	// in [0, 1).
	LossRate float64
}

// Config parameterizes the latency/loss model.
type Config struct {
	// PropagationKmPerMs converts fiber distance to delay; ~200 km/ms.
	PropagationKmPerMs float64
	// PerHopOneWay is per-AS-hop processing/queueing delay.
	PerHopOneWay time.Duration
	// IntraASOneWay is the delay inside an endpoint or transit AS.
	IntraASOneWay time.Duration
	// BaseLossRate is the per-AS-hop background loss rate.
	BaseLossRate float64

	// CongestedFrac is the fraction of transit ASes with moderate
	// congestion; SevereFrac the fraction with severe (multi-second)
	// impairment — these produce the paper's Fig. 2(a) tail, including
	// the ~10 sessions above 5 s RTT.
	CongestedFrac float64
	SevereFrac    float64
	// CongestedOneWay bounds the moderate extra one-way delay.
	CongestedMinOneWay, CongestedMaxOneWay time.Duration
	// SevereOneWay bounds the severe extra one-way delay.
	SevereMinOneWay, SevereMaxOneWay time.Duration
	// CongestedLossMax bounds extra loss on congested ASes.
	CongestedLossMax float64

	// TIVSpread controls per-link circuitousness: each AS link's latency
	// is inflated by a deterministic factor in [1, 1+TIVSpread], skewed
	// toward 1. Real inter-AS links do not follow geodesics (undersea
	// cable detours, sparse peering), producing the triangle-inequality
	// violations that make one-hop relays beat direct routing for ~60%
	// of sessions in Figure 2(b).
	TIVSpread float64
	// TIVMinKm restricts circuitousness to long-haul links: short
	// intra-region links are laid close to geodesics, while undersea and
	// transcontinental segments detour. Keeping short links clean also
	// makes the RTT distribution scale-invariant — path hop count grows
	// with world size, but the number of long-haul segments per path
	// does not.
	TIVMinKm float64
}

// DefaultConfig returns the calibrated defaults used by the evaluation.
func DefaultConfig() Config {
	return Config{
		PropagationKmPerMs: 200,
		PerHopOneWay:       800 * time.Microsecond,
		IntraASOneWay:      600 * time.Microsecond,
		BaseLossRate:       0.0002,
		CongestedFrac:      0.012,
		SevereFrac:         0.004,
		CongestedMinOneWay: 30 * time.Millisecond,
		CongestedMaxOneWay: 250 * time.Millisecond,
		SevereMinOneWay:    500 * time.Millisecond,
		SevereMaxOneWay:    2800 * time.Millisecond,
		CongestedLossMax:   0.04,
		TIVSpread:          1.8,
		TIVMinKm:           700,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.PropagationKmPerMs <= 0:
		return fmt.Errorf("netmodel: PropagationKmPerMs must be > 0")
	case c.BaseLossRate < 0 || c.BaseLossRate >= 1:
		return fmt.Errorf("netmodel: BaseLossRate must be in [0,1)")
	case c.CongestedFrac < 0 || c.CongestedFrac > 1 || c.SevereFrac < 0 || c.SevereFrac > 1:
		return fmt.Errorf("netmodel: congestion fractions must be in [0,1]")
	case c.CongestedMinOneWay > c.CongestedMaxOneWay:
		return fmt.Errorf("netmodel: congested delay bounds inverted")
	case c.SevereMinOneWay > c.SevereMaxOneWay:
		return fmt.Errorf("netmodel: severe delay bounds inverted")
	case c.TIVSpread < 0:
		return fmt.Errorf("netmodel: TIVSpread must be >= 0")
	case c.TIVMinKm < 0:
		return fmt.Errorf("netmodel: TIVMinKm must be >= 0")
	}
	return nil
}

// cacheShards stripes the cluster-pair RTT cache so concurrent lookups
// from many goroutines contend on independent locks. 64 shards keeps
// contention negligible at GOMAXPROCS-scale worker pools while the
// fixed-size array stays cheap to allocate per Model.
const cacheShards = 64

// rttShard is one stripe of the cluster-pair cache.
type rttShard struct {
	mu sync.RWMutex
	m  map[uint64]pathStats
}

// Model is the omniscient ground-truth network. All methods are safe for
// concurrent use: the cluster-pair cache is striped across cacheShards
// locks, and the mutable condition map has its own RWMutex.
//
// Lock ordering: condMu before any shard mutex. Readers never hold both;
// SetCondition/ResetConditions take condMu then drop each shard in turn.
type Model struct {
	cfg    Config
	g      *asgraph.Graph
	router *asgraph.Router
	pop    *cluster.Population

	condMu     sync.RWMutex
	conditions map[asgraph.ASN]Condition
	// condGen increments on every condition mutation; cache fills started
	// under an older generation are discarded instead of stored, so a
	// concurrent SetCondition can never leave a stale entry behind.
	condGen atomic.Uint64

	// tivSeed randomizes the deterministic per-link circuitousness hash.
	tivSeed uint64

	shards [cacheShards]rttShard // cluster-pair cache
}

type pathStats struct {
	rtt  time.Duration
	loss float64
	hops int
	ok   bool
}

func (m *Model) shard(key uint64) *rttShard {
	return &m.shards[(key^key>>32)%cacheShards]
}

func (m *Model) initShards() {
	for i := range m.shards {
		m.shards[i].m = make(map[uint64]pathStats)
	}
}

// dropCacheLocked empties every shard. Callers must hold condMu (write)
// and must have bumped condGen first, so in-flight fills observe the new
// generation and discard their results.
func (m *Model) dropCacheLocked() {
	for i := range m.shards {
		sh := &m.shards[i]
		sh.mu.Lock()
		sh.m = make(map[uint64]pathStats)
		sh.mu.Unlock()
	}
}

// New builds a Model over the world, injecting congestion per cfg using
// rng. The Population may be nil when only AS-level queries are needed.
func New(g *asgraph.Graph, router *asgraph.Router, pop *cluster.Population, cfg Config, rng *sim.RNG) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Model{
		cfg:        cfg,
		g:          g,
		router:     router,
		pop:        pop,
		conditions: make(map[asgraph.ASN]Condition),
		tivSeed:    uint64(rng.Int63()),
	}
	m.initShards()
	// Impairments land on transit infrastructure that paths can route
	// around (Fig. 4's congested AS H), never on an AS that is some
	// stub's only uplink: congestion there is unbypassable by any relay,
	// and the paper's latent sessions were all rescuable.
	soleUplink := make(map[asgraph.ASN]bool)
	for _, asn := range g.ASNs() {
		if g.Node(asn).Tier != asgraph.TierStub {
			continue
		}
		var providers []asgraph.ASN
		for _, e := range g.Edges(asn) {
			if e.Rel == asgraph.RelC2P {
				providers = append(providers, e.To)
			}
		}
		if len(providers) == 1 {
			soleUplink[providers[0]] = true
		}
	}
	for _, asn := range g.ASNs() {
		n := g.Node(asn)
		if n.Tier == asgraph.TierStub {
			continue
		}
		if soleUplink[asn] {
			// Mild congestion only: enough to shape the bulk RTT
			// distribution, not enough to strand its captive stubs above
			// the quality threshold on its own.
			if rng.Bool(cfg.CongestedFrac) {
				m.conditions[asn] = Condition{
					ExtraOneWay: time.Duration(rng.Uniform(
						float64(cfg.CongestedMinOneWay),
						float64(cfg.CongestedMinOneWay)+
							(float64(cfg.CongestedMaxOneWay)-float64(cfg.CongestedMinOneWay))/4)),
					LossRate: rng.Uniform(0, cfg.CongestedLossMax/2),
				}
			}
			continue
		}
		switch {
		case rng.Bool(cfg.SevereFrac):
			m.conditions[asn] = Condition{
				ExtraOneWay: time.Duration(rng.Uniform(
					float64(cfg.SevereMinOneWay), float64(cfg.SevereMaxOneWay))),
				LossRate: rng.Uniform(0.02, 0.15),
			}
		case rng.Bool(cfg.CongestedFrac):
			m.conditions[asn] = Condition{
				ExtraOneWay: time.Duration(rng.Uniform(
					float64(cfg.CongestedMinOneWay), float64(cfg.CongestedMaxOneWay))),
				LossRate: rng.Uniform(0, cfg.CongestedLossMax),
			}
		}
	}
	return m, nil
}

// WithPopulation returns a model over the same graph, conditions and
// link circuitousness but a different host population — the paired
// scalability experiment of Figure 17 densifies the population while
// holding the network fixed. The cluster-pair cache starts empty (cluster
// IDs belong to the population).
func (m *Model) WithPopulation(pop *cluster.Population) *Model {
	m.condMu.RLock()
	defer m.condMu.RUnlock()
	cp := &Model{
		cfg:        m.cfg,
		g:          m.g,
		router:     m.router,
		pop:        pop,
		conditions: make(map[asgraph.ASN]Condition, len(m.conditions)),
		tivSeed:    m.tivSeed,
	}
	cp.initShards()
	for k, v := range m.conditions {
		cp.conditions[k] = v
	}
	return cp
}

// SetCondition injects or replaces an impairment on an AS (used by tests
// and the churn example). Passing a zero Condition clears it.
func (m *Model) SetCondition(asn asgraph.ASN, c Condition) {
	m.condMu.Lock()
	defer m.condMu.Unlock()
	if c == (Condition{}) {
		delete(m.conditions, asn)
	} else {
		m.conditions[asn] = c
	}
	// Conditions affect cached paths; invalidate in-flight fills, then
	// drop the cache.
	m.condGen.Add(1)
	m.dropCacheLocked()
}

// ResetConditions removes every injected impairment and drops the
// cluster-pair cache, returning the model to its post-New baseline minus
// the randomly injected congestion. Used by tests that interleave cache
// drops with concurrent lookups.
func (m *Model) ResetConditions() {
	m.condMu.Lock()
	defer m.condMu.Unlock()
	m.conditions = make(map[asgraph.ASN]Condition)
	m.condGen.Add(1)
	m.dropCacheLocked()
}

// Condition returns the impairment on asn, if any.
func (m *Model) Condition(asn asgraph.ASN) (Condition, bool) {
	m.condMu.RLock()
	defer m.condMu.RUnlock()
	c, ok := m.conditions[asn]
	return c, ok
}

// CongestedASes returns every AS with an injected impairment, in
// ascending ASN order: the set lives in a map, and handing callers the
// randomized iteration order would leak nondeterminism into any report
// or decision built from it.
func (m *Model) CongestedASes() []asgraph.ASN {
	m.condMu.RLock()
	defer m.condMu.RUnlock()
	out := make([]asgraph.ASN, 0, len(m.conditions))
	for asn := range m.conditions {
		out = append(out, asn)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Graph returns the underlying AS graph.
func (m *Model) Graph() *asgraph.Graph { return m.g }

// Router returns the policy router.
func (m *Model) Router() *asgraph.Router { return m.router }

// Population returns the host population (may be nil).
func (m *Model) Population() *cluster.Population { return m.pop }

// linkTIV returns the deterministic circuitousness multiplier of the
// undirected link a-b: 1 + TIVSpread * u^3 for a per-link uniform u, so
// most links are near-geodesic and a tail is strongly detoured.
func (m *Model) linkTIV(a, b asgraph.ASN) float64 {
	if m.cfg.TIVSpread == 0 {
		return 1
	}
	if a > b {
		a, b = b, a
	}
	// FNV-1a over (seed, a, b).
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	mix(m.tivSeed)
	mix(uint64(a))
	mix(uint64(b))
	u := float64(h>>11) / float64(1<<53)
	return 1 + m.cfg.TIVSpread*u*u*u
}

func (m *Model) linkOneWay(a, b asgraph.ASN) time.Duration {
	na, nb := m.g.Node(a), m.g.Node(b)
	dx, dy := na.X-nb.X, na.Y-nb.Y
	km := math.Sqrt(dx*dx + dy*dy)
	mult := 1.0
	if km > m.cfg.TIVMinKm {
		mult = m.linkTIV(a, b)
	}
	prop := time.Duration(km / m.cfg.PropagationKmPerMs * mult * float64(time.Millisecond))
	return prop + m.cfg.PerHopOneWay
}

// pathOneWay computes one-way delay and loss along an AS path, applying
// the conditions of every AS on it (endpoints included: an impaired edge
// AS hurts its own hosts too).
func (m *Model) pathOneWay(path []asgraph.ASN) (time.Duration, float64) {
	d := m.cfg.IntraASOneWay * time.Duration(len(path))
	success := 1.0
	for i, asn := range path {
		if i+1 < len(path) {
			d += m.linkOneWay(asn, path[i+1])
			success *= 1 - m.cfg.BaseLossRate
		}
		if c, ok := m.conditions[asn]; ok {
			d += c.ExtraOneWay
			success *= 1 - c.LossRate
		}
	}
	return d, 1 - success
}

func pairKey(a, b cluster.ClusterID) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// clusterPath returns the AS-level stats between two clusters, caching by
// cluster pair (property 1 of Section 6: intra-cluster latency spread is
// negligible next to inter-cluster latency).
func (m *Model) clusterPath(c1, c2 cluster.ClusterID) pathStats {
	key := pairKey(c1, c2)
	sh := m.shard(key)
	sh.mu.RLock()
	st, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		return st
	}

	// Compute outside any shard lock; concurrent misses for the same pair
	// duplicate work but arrive at identical values (asPath is a pure
	// function of the route tables and the condition map).
	gen := m.condGen.Load()
	a := m.pop.Cluster(c1).AS
	b := m.pop.Cluster(c2).AS
	st = m.asPath(a, b)

	sh.mu.Lock()
	// Store only if no condition mutation raced with the fill: SetCondition
	// bumps condGen before it empties the shards, so a matching generation
	// here proves the value is still current.
	if m.condGen.Load() == gen {
		sh.m[key] = st
	}
	sh.mu.Unlock()
	return st
}

// asPath computes path stats between two ASes. It holds condMu for
// reading so the condition map is observed as one consistent snapshot
// across the whole path walk.
func (m *Model) asPath(a, b asgraph.ASN) pathStats {
	m.condMu.RLock()
	defer m.condMu.RUnlock()
	return m.asPathLocked(a, b)
}

// asPathLocked is asPath's body, for callers that already hold condMu
// (the batch lookups compute many paths under one condition snapshot —
// re-acquiring the read lock per path would both cost a lock round
// trip each and risk writer starvation between recursive RLocks). The
// table is always keyed on the smaller ASN: forward and reverse policy
// paths can legitimately differ, and RTT ground truth must not depend
// on router-cache state.
func (m *Model) asPathLocked(a, b asgraph.ASN) pathStats {
	if a == b {
		oneWay := m.cfg.IntraASOneWay
		var loss float64
		if c, ok := m.conditions[a]; ok {
			oneWay += c.ExtraOneWay
			loss = c.LossRate
		}
		return pathStats{rtt: 2 * oneWay, loss: loss, hops: 0, ok: true}
	}
	dst, src := a, b
	if dst > src {
		dst, src = src, dst
	}
	t := m.router.Table(dst)
	if t == nil {
		return pathStats{}
	}
	path, ok := t.Path(src)
	if !ok {
		return pathStats{}
	}
	oneWay, loss := m.pathOneWay(path)
	return pathStats{rtt: 2 * oneWay, loss: loss, hops: len(path) - 1, ok: true}
}

// ASPathRTT returns the ground-truth RTT between two ASes and whether
// they are connected.
func (m *Model) ASPathRTT(a, b asgraph.ASN) (time.Duration, bool) {
	st := m.asPath(a, b)
	return st.rtt, st.ok
}

// ASPathHops returns the policy AS-hop count between two ASes.
func (m *Model) ASPathHops(a, b asgraph.ASN) (int, bool) {
	st := m.asPath(a, b)
	return st.hops, st.ok
}

// HostRTT returns the ground-truth RTT between two hosts: the cluster-pair
// path RTT plus both hosts' access delays in each direction. Same-host
// queries return ~0.
func (m *Model) HostRTT(h1, h2 cluster.HostID) (time.Duration, bool) {
	if h1 == h2 {
		return 0, true
	}
	a, b := m.pop.Host(h1), m.pop.Host(h2)
	access := 2 * (a.AccessDelay + b.AccessDelay)
	if a.Cluster == b.Cluster {
		return access, true
	}
	st := m.clusterPath(a.Cluster, b.Cluster)
	if !st.ok {
		return 0, false
	}
	return st.rtt + access, true
}

// HostLoss returns the ground-truth end-to-end loss rate between hosts.
func (m *Model) HostLoss(h1, h2 cluster.HostID) (float64, bool) {
	if h1 == h2 {
		return 0, true
	}
	a, b := m.pop.Host(h1), m.pop.Host(h2)
	if a.Cluster == b.Cluster {
		return 0, true
	}
	st := m.clusterPath(a.Cluster, b.Cluster)
	if !st.ok {
		return 0, false
	}
	return st.loss, true
}

// ClusterRTT returns the ground-truth delegate-to-delegate RTT between two
// clusters.
func (m *Model) ClusterRTT(c1, c2 cluster.ClusterID) (time.Duration, bool) {
	if c1 == c2 {
		return 2 * m.cfg.IntraASOneWay, true
	}
	st := m.clusterPath(c1, c2)
	return st.rtt, st.ok
}

// ClusterLoss returns the ground-truth loss rate between two clusters.
func (m *Model) ClusterLoss(c1, c2 cluster.ClusterID) (float64, bool) {
	if c1 == c2 {
		return 0, true
	}
	st := m.clusterPath(c1, c2)
	return st.loss, st.ok
}
