package netmodel

import (
	"testing"
	"time"

	"asap/internal/cluster"
	"asap/internal/sim"
)

// The batch lookups must be drop-in equivalents of the scalar calls:
// same values pair for pair, cold cache or warm, before and after a
// condition mutation — and allocation-free at steady state.

func batchTargets(m *Model, rng *sim.RNG, owner cluster.ClusterID, n int) []cluster.ClusterID {
	pop := m.Population()
	targets := make([]cluster.ClusterID, 0, n+2)
	for i := 0; i < n; i++ {
		targets = append(targets, cluster.ClusterID(rng.Intn(pop.NumClusters())))
	}
	// Edge cases the batch key phase special-cases: the owner itself, and
	// a duplicate of an earlier target (same cache key twice in one call).
	targets = append(targets, owner, targets[0])
	return targets
}

func assertClusterBatchMatches(t *testing.T, m *Model, owner cluster.ClusterID, targets []cluster.ClusterID) {
	t.Helper()
	out := make([]PairStat, len(targets))
	m.ClusterStatsBatch(owner, targets, out)
	for i, tc := range targets {
		rtt, rok := m.ClusterRTT(owner, tc)
		loss, lok := m.ClusterLoss(owner, tc)
		if out[i].OK != rok || out[i].OK != lok {
			t.Fatalf("target %d (%d->%d): batch ok=%v, scalar rtt ok=%v loss ok=%v", i, owner, tc, out[i].OK, rok, lok)
		}
		if !out[i].OK {
			continue
		}
		if out[i].RTT != rtt || out[i].Loss != loss {
			t.Errorf("target %d (%d->%d): batch (%v, %g), scalar (%v, %g)", i, owner, tc, out[i].RTT, out[i].Loss, rtt, loss)
		}
	}
}

func TestClusterStatsBatchMatchesScalar(t *testing.T) {
	m, rng := testModel(t, 200, 1500, 90, DefaultConfig())
	pop := m.Population()
	for round := 0; round < 10; round++ {
		owner := cluster.ClusterID(rng.Intn(pop.NumClusters()))
		targets := batchTargets(m, rng, owner, 30)
		// Cold pass populates the cache, warm pass replays it.
		assertClusterBatchMatches(t, m, owner, targets)
		assertClusterBatchMatches(t, m, owner, targets)
	}

	// A condition mutation drops the cache and changes ground truth; the
	// batch must track the scalar path through it.
	owner := cluster.ClusterID(rng.Intn(pop.NumClusters()))
	targets := batchTargets(m, rng, owner, 30)
	assertClusterBatchMatches(t, m, owner, targets)
	asn := pop.Cluster(targets[0]).AS
	m.SetCondition(asn, Condition{ExtraOneWay: 50 * time.Millisecond})
	assertClusterBatchMatches(t, m, owner, targets)
	m.ResetConditions()
	assertClusterBatchMatches(t, m, owner, targets)
}

func TestHostStatsBatchMatchesScalar(t *testing.T) {
	m, rng := testModel(t, 200, 1500, 91, DefaultConfig())
	pop := m.Population()
	for round := 0; round < 10; round++ {
		a := cluster.HostID(rng.Intn(pop.NumHosts()))
		bs := make([]cluster.HostID, 0, 34)
		for i := 0; i < 30; i++ {
			bs = append(bs, cluster.HostID(rng.Intn(pop.NumHosts())))
		}
		// Edge cases: the owner host itself, a same-cluster neighbour, and
		// a duplicate target.
		bs = append(bs, a, bs[0])
		if sib := pop.Cluster(pop.Host(a).Cluster).Hosts[0]; sib != a {
			bs = append(bs, sib)
		}
		out := make([]PairStat, len(bs))
		m.HostStatsBatch(a, bs, out)
		for i, b := range bs {
			rtt, rok := m.HostRTT(a, b)
			loss, lok := m.HostLoss(a, b)
			if out[i].OK != rok || out[i].OK != lok {
				t.Fatalf("pair %d (%d->%d): batch ok=%v, scalar rtt ok=%v loss ok=%v", i, a, b, out[i].OK, rok, lok)
			}
			if !out[i].OK {
				continue
			}
			if out[i].RTT != rtt || out[i].Loss != loss {
				t.Errorf("pair %d (%d->%d): batch (%v, %g), scalar (%v, %g)", i, a, b, out[i].RTT, out[i].Loss, rtt, loss)
			}
		}
	}
}

// TestProbeClusterSetMatchesScalarSequence pins the RNG contract: with
// identical streams, the batched probe round produces bit-identical
// measurements and identical message accounting to the scalar
// ClusterRTT-then-ClusterLoss sequence it replaces.
func TestProbeClusterSetMatchesScalarSequence(t *testing.T) {
	m, rng := testModel(t, 200, 1500, 92, DefaultConfig())
	pop := m.Population()
	cfg := DefaultProberConfig()
	cfg.ResponseProb = 0.7 // force plenty of non-responses into the stream
	latT := 150 * time.Millisecond

	for round := 0; round < 20; round++ {
		owner := cluster.ClusterID(rng.Intn(pop.NumClusters()))
		targets := batchTargets(m, rng, owner, 25)
		seed := int64(1000 + round)

		sCtr := sim.NewCounters()
		sp, err := NewProber(m, cfg, sim.NewRNG(seed), sCtr)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]ClusterProbe, len(targets))
		for i, tc := range targets {
			var pr ClusterProbe
			pr.RTT, pr.RTTOK = sp.ClusterRTT(owner, tc)
			if pr.RTTOK && pr.RTT < latT {
				pr.Loss, pr.LossOK = sp.ClusterLoss(owner, tc)
			}
			want[i] = pr
		}

		bCtr := sim.NewCounters()
		bp, err := NewProber(m, cfg, sim.NewRNG(seed), bCtr)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]ClusterProbe, len(targets))
		bp.ProbeClusterSet(owner, targets, latT, got)

		for i := range targets {
			if got[i] != want[i] {
				t.Fatalf("round %d target %d: batched %+v, scalar %+v", round, i, got[i], want[i])
			}
		}
		if s, b := sCtr.Total(), bCtr.Total(); s != b {
			t.Errorf("round %d: batched charged %d messages, scalar %d", round, b, s)
		}
	}
}

// TestClusterStatsBatchAllocs gates the vectorized lookup's zero-alloc
// claim: with a warm cache and reused output, a batch visit allocates
// nothing.
func TestClusterStatsBatchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are meaningless under -race")
	}
	m, rng := testModel(t, 200, 1500, 93, DefaultConfig())
	pop := m.Population()
	owner := cluster.ClusterID(rng.Intn(pop.NumClusters()))
	targets := batchTargets(m, rng, owner, 40)
	out := make([]PairStat, len(targets))
	m.ClusterStatsBatch(owner, targets, out) // warm the cache and the scratch pool

	if n := testing.AllocsPerRun(200, func() {
		m.ClusterStatsBatch(owner, targets, out)
	}); n != 0 {
		t.Errorf("warm ClusterStatsBatch allocates %.1f per run, want 0", n)
	}

	a := pop.Cluster(owner).Hosts[0]
	bs := make([]cluster.HostID, len(targets))
	for i, tc := range targets {
		bs[i] = pop.Cluster(tc).Hosts[0]
	}
	m.HostStatsBatch(a, bs, out)
	if n := testing.AllocsPerRun(200, func() {
		m.HostStatsBatch(a, bs, out)
	}); n != 0 {
		t.Errorf("warm HostStatsBatch allocates %.1f per run, want 0", n)
	}
}
