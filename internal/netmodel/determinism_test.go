package netmodel

import (
	"testing"
	"time"

	"asap/internal/asgraph"
)

// TestCongestedASesDeterministic is the regression test for the maporder
// fix in CongestedASes: the impairment set lives in a map, and before
// the fix the method returned the ASes in Go's randomized iteration
// order, so two identical runs could report congestion in different
// orders. The fixed method must return ascending ASNs, byte-identical
// on every call. Repeated calls are a real probe: Go re-randomizes map
// iteration on every range, so an unsorted implementation fails this
// test with high probability.
func TestCongestedASesDeterministic(t *testing.T) {
	m, _ := testModel(t, 120, 300, 7, DefaultConfig())
	// Insertion order deliberately not ascending.
	for _, asn := range []asgraph.ASN{40, 7, 99, 3, 61, 88, 15, 52, 26, 74} {
		m.SetCondition(asn, Condition{ExtraOneWay: 25 * time.Millisecond})
	}
	first := m.CongestedASes()
	if len(first) != 10 {
		t.Fatalf("got %d congested ASes, want 10", len(first))
	}
	for i := 1; i < len(first); i++ {
		if first[i-1] >= first[i] {
			t.Fatalf("CongestedASes not in ascending order: %v", first)
		}
	}
	for trial := 0; trial < 50; trial++ {
		got := m.CongestedASes()
		if len(got) != len(first) {
			t.Fatalf("trial %d: length changed: %v vs %v", trial, got, first)
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatalf("trial %d: order changed: %v vs %v", trial, got, first)
			}
		}
	}
}
