package netmodel

import (
	"math"
	"testing"
	"time"

	"asap/internal/asgraph"
	"asap/internal/bgp"
	"asap/internal/cluster"
	"asap/internal/sim"
)

func testModel(t testing.TB, ases, hosts int, seed int64, cfg Config) (*Model, *sim.RNG) {
	t.Helper()
	rng := sim.NewRNG(seed)
	g, err := asgraph.Generate(asgraph.DefaultGenConfig(ases), rng)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := bgp.Allocate(g, bgp.DefaultAllocConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := cluster.Generate(alloc, cluster.DefaultGenConfig(hosts), rng)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(g, asgraph.NewRouter(g, 0), pop, cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	return m, rng
}

func TestHostRTTProperties(t *testing.T) {
	m, rng := testModel(t, 300, 2000, 60, DefaultConfig())
	pop := m.Population()
	for i := 0; i < 300; i++ {
		a := cluster.HostID(rng.Intn(pop.NumHosts()))
		b := cluster.HostID(rng.Intn(pop.NumHosts()))
		r1, ok1 := m.HostRTT(a, b)
		r2, ok2 := m.HostRTT(b, a)
		if ok1 != ok2 || r1 != r2 {
			t.Fatalf("RTT not symmetric: %v,%v vs %v,%v", r1, ok1, r2, ok2)
		}
		if !ok1 {
			continue
		}
		if a != b && r1 <= 0 {
			t.Fatalf("non-positive RTT %v for %d-%d", r1, a, b)
		}
		loss, ok := m.HostLoss(a, b)
		if !ok || loss < 0 || loss >= 1 {
			t.Fatalf("loss out of range: %v,%v", loss, ok)
		}
	}
	if r, ok := m.HostRTT(3, 3); !ok || r != 0 {
		t.Errorf("self RTT = %v,%v", r, ok)
	}
}

func TestSameClusterFasterThanCrossRegion(t *testing.T) {
	// Individual pairs can invert (access delays are heavy-tailed), so
	// compare the means over many samples.
	m, rng := testModel(t, 300, 3000, 61, DefaultConfig())
	pop := m.Population()
	var intraSum, interSum time.Duration
	intraN, interN := 0, 0
	for _, c := range pop.Clusters() {
		if len(c.Hosts) < 2 {
			continue
		}
		if r, ok := m.HostRTT(c.Hosts[0], c.Hosts[1]); ok {
			intraSum += r
			intraN++
		}
		other := pop.Cluster(cluster.ClusterID(rng.Intn(pop.NumClusters())))
		if other.ID == c.ID {
			continue
		}
		if r, ok := m.HostRTT(c.Hosts[0], other.Hosts[0]); ok {
			interSum += r
			interN++
		}
	}
	if intraN < 10 || interN < 10 {
		t.Skip("not enough samples")
	}
	intra := intraSum / time.Duration(intraN)
	inter := interSum / time.Duration(interN)
	if intra >= inter {
		t.Errorf("mean intra-cluster RTT %v >= mean inter-cluster %v (n=%d/%d)",
			intra, inter, intraN, interN)
	}
}

func TestCongestionInflatesRTT(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CongestedFrac = 0
	cfg.SevereFrac = 0
	m, rng := testModel(t, 300, 1000, 62, cfg)
	pop := m.Population()

	// Find a host pair whose policy path transits some AS, then congest
	// that AS and verify RTT grows by the injected amount.
	var a, b cluster.HostID
	var mid asgraph.ASN
	for i := 0; i < 500; i++ {
		a = cluster.HostID(rng.Intn(pop.NumHosts()))
		b = cluster.HostID(rng.Intn(pop.NumHosts()))
		ha, hb := pop.Host(a), pop.Host(b)
		if ha.AS == hb.AS {
			continue
		}
		path, ok := m.Router().Path(ha.AS, hb.AS)
		if !ok || len(path) < 3 {
			continue
		}
		mid = path[1]
		break
	}
	if mid == 0 {
		t.Skip("no multi-hop pair found")
	}
	before, ok := m.HostRTT(a, b)
	if !ok {
		t.Fatal("unreachable pair")
	}
	const extra = 100 * time.Millisecond
	m.SetCondition(mid, Condition{ExtraOneWay: extra, LossRate: 0.02})
	after, ok := m.HostRTT(a, b)
	if !ok {
		t.Fatal("unreachable after congestion")
	}
	if d := after - before; d != 2*extra {
		t.Errorf("RTT grew by %v, want %v (both directions)", d, 2*extra)
	}
	loss, _ := m.HostLoss(a, b)
	if loss < 0.02 {
		t.Errorf("loss %v does not reflect congested AS", loss)
	}
	// Clearing restores.
	m.SetCondition(mid, Condition{})
	restored, _ := m.HostRTT(a, b)
	if restored != before {
		t.Errorf("clear condition: RTT %v, want %v", restored, before)
	}
}

func TestHopLatencyCorrelation(t *testing.T) {
	// Internet property (3) in Section 6: more AS hops => usually more
	// latency. Check rank correlation is clearly positive on clean paths.
	cfg := DefaultConfig()
	cfg.CongestedFrac = 0
	cfg.SevereFrac = 0
	m, rng := testModel(t, 400, 1000, 63, cfg)
	pop := m.Population()
	type sample struct {
		hops int
		rtt  time.Duration
	}
	var samples []sample
	for i := 0; i < 400; i++ {
		a := pop.Host(cluster.HostID(rng.Intn(pop.NumHosts())))
		b := pop.Host(cluster.HostID(rng.Intn(pop.NumHosts())))
		if a.AS == b.AS {
			continue
		}
		hops, ok := m.ASPathHops(a.AS, b.AS)
		if !ok {
			continue
		}
		rtt, _ := m.ASPathRTT(a.AS, b.AS)
		samples = append(samples, sample{hops, rtt})
	}
	if len(samples) < 100 {
		t.Skip("not enough connected samples")
	}
	var byHops [16][]float64
	for _, s := range samples {
		if s.hops < 16 {
			byHops[s.hops] = append(byHops[s.hops], float64(s.rtt))
		}
	}
	var means []float64
	for _, xs := range byHops {
		if len(xs) >= 5 {
			var sum float64
			for _, x := range xs {
				sum += x
			}
			means = append(means, sum/float64(len(xs)))
		}
	}
	if len(means) < 3 {
		t.Skip("too few hop buckets")
	}
	increasing := 0
	for i := 1; i < len(means); i++ {
		if means[i] > means[i-1] {
			increasing++
		}
	}
	if increasing < (len(means)-1)/2 {
		t.Errorf("hop/latency correlation too weak: means %v", means)
	}
}

func TestRTTStableAcrossCacheReset(t *testing.T) {
	// Ground-truth RTT must not depend on router/model cache state:
	// clearing the cache (via SetCondition on an AS unrelated to the
	// pair) has to reproduce identical values.
	m, rng := testModel(t, 300, 1500, 69, DefaultConfig())
	pop := m.Population()
	type pair struct {
		a, b cluster.HostID
		rtt  time.Duration
	}
	var pairs []pair
	for i := 0; i < 100; i++ {
		a := cluster.HostID(rng.Intn(pop.NumHosts()))
		b := cluster.HostID(rng.Intn(pop.NumHosts()))
		if rtt, ok := m.HostRTT(a, b); ok {
			pairs = append(pairs, pair{a, b, rtt})
		}
	}
	// Find an AS that carries no host of the sampled pairs and perturb it
	// just to flush caches.
	used := make(map[asgraph.ASN]bool)
	for _, p := range pairs {
		used[pop.Host(p.a).AS] = true
		used[pop.Host(p.b).AS] = true
	}
	var scratch asgraph.ASN
	for _, asn := range m.Graph().ASNs() {
		if m.Graph().Node(asn).Tier == asgraph.TierStub && !used[asn] && m.Graph().Degree(asn) == 1 {
			scratch = asn
			break
		}
	}
	if scratch == 0 {
		t.Skip("no isolated scratch AS")
	}
	m.SetCondition(scratch, Condition{ExtraOneWay: time.Second})
	m.SetCondition(scratch, Condition{})
	for _, p := range pairs {
		rtt, ok := m.HostRTT(p.a, p.b)
		if !ok || rtt != p.rtt {
			t.Fatalf("RTT(%d,%d) changed across cache reset: %v -> %v", p.a, p.b, p.rtt, rtt)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	rng := sim.NewRNG(1)
	g, _ := asgraph.Generate(asgraph.DefaultGenConfig(50), rng)
	bad := []Config{
		{},
		func() Config { c := DefaultConfig(); c.BaseLossRate = 1; return c }(),
		func() Config { c := DefaultConfig(); c.CongestedFrac = -0.1; return c }(),
		func() Config {
			c := DefaultConfig()
			c.CongestedMinOneWay = time.Second
			c.CongestedMaxOneWay = 0
			return c
		}(),
		func() Config { c := DefaultConfig(); c.SevereMinOneWay = time.Second; c.SevereMaxOneWay = 0; return c }(),
	}
	for i, cfg := range bad {
		if _, err := New(g, asgraph.NewRouter(g, 0), nil, cfg, rng); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestEModelAnchors(t *testing.T) {
	// Zero delay, zero loss, G.711: near-best narrowband quality.
	if mos := MOS(0, 0, CodecG711); mos < 4.3 {
		t.Errorf("perfect G.711 MOS = %.2f, want >= 4.3", mos)
	}
	// The paper's operating point: RTT 300 ms, 0.5% loss, G.729A.
	mos := MOSFromRTT(300*time.Millisecond, 0.005, CodecG729A)
	if mos < 3.6 || mos > 4.1 {
		t.Errorf("G.729A at 300ms/0.5%% = %.2f, want in (3.6, 4.1): the 300ms threshold must sit at the satisfaction boundary", mos)
	}
	// 1 s RTT is unsatisfactory (paper: ~3%% of baseline sessions < 2.9).
	if mos := MOSFromRTT(time.Second, 0.005, CodecG729A); mos >= 2.9 {
		t.Errorf("G.729A at 1s = %.2f, want < 2.9", mos)
	}
	// "MOS drops by roughly one unit every 1% of packet loss" without
	// concealment (G.711, Section 2).
	drop := MOS(50*time.Millisecond, 0, CodecG711) - MOS(50*time.Millisecond, 0.01, CodecG711)
	if drop < 0.5 || drop > 1.5 {
		t.Errorf("G.711 MOS drop per 1%% loss = %.2f, want ~1", drop)
	}
}

func TestEModelMonotonicity(t *testing.T) {
	prev := math.Inf(1)
	for d := time.Duration(0); d <= 2*time.Second; d += 50 * time.Millisecond {
		mos := MOS(d, 0.005, CodecG729A)
		if mos > prev {
			t.Fatalf("MOS not monotone in delay at %v", d)
		}
		if mos < 1 || mos > 4.5 {
			t.Fatalf("MOS out of range: %v at %v", mos, d)
		}
		prev = mos
	}
	prevLoss := math.Inf(1)
	for l := 0.0; l <= 0.20; l += 0.01 {
		mos := MOS(100*time.Millisecond, l, CodecG729A)
		if mos > prevLoss {
			t.Fatalf("MOS not monotone in loss at %v", l)
		}
		prevLoss = mos
	}
}

func TestMOSFromRBounds(t *testing.T) {
	if MOSFromR(-10) != 1 {
		t.Error("R<=0 must clamp to 1")
	}
	if MOSFromR(150) != 4.5 {
		t.Error("R>=100 must clamp to 4.5")
	}
}

func TestProberNoiseAndAccounting(t *testing.T) {
	m, rng := testModel(t, 200, 500, 64, DefaultConfig())
	ctr := sim.NewCounters()
	p, err := NewProber(m, DefaultProberConfig(), rng, ctr)
	if err != nil {
		t.Fatal(err)
	}
	pop := m.Population()
	var measured, truth float64
	n := 0
	for i := 0; i < 200; i++ {
		a := cluster.HostID(rng.Intn(pop.NumHosts()))
		b := cluster.HostID(rng.Intn(pop.NumHosts()))
		if a == b {
			continue
		}
		est, ok := p.HostRTT(a, b)
		if !ok {
			continue
		}
		gt, ok2 := m.HostRTT(a, b)
		if !ok2 {
			t.Fatal("prober measured an unreachable pair")
		}
		measured += float64(est)
		truth += float64(gt)
		n++
	}
	if n < 100 {
		t.Fatalf("only %d measurements succeeded", n)
	}
	if ctr.Get("probe.host_rtt") != 400 {
		t.Errorf("probe accounting = %d, want 400 (2 msgs x 200 probes)", ctr.Get("probe.host_rtt"))
	}
	if ratio := measured / truth; ratio < 0.9 || ratio > 1.1 {
		t.Errorf("aggregate measurement bias %.3f; noise should be unbiased", ratio)
	}
}

func TestProberNonResponse(t *testing.T) {
	m, rng := testModel(t, 200, 500, 65, DefaultConfig())
	cfg := DefaultProberConfig()
	cfg.ResponseProb = 0.5
	p, err := NewProber(m, cfg, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	fails := 0
	for i := 0; i < 400; i++ {
		if _, ok := p.ClusterRTT(0, 1); !ok {
			fails++
		}
	}
	if fails < 120 || fails > 280 {
		t.Errorf("non-response count %d/400, want ~200", fails)
	}
	if p.Counters().Get("probe.cluster_rtt") != 800 {
		t.Errorf("failed probes must still be charged: %d", p.Counters().Get("probe.cluster_rtt"))
	}
}

func TestProberValidation(t *testing.T) {
	m, rng := testModel(t, 100, 200, 66, DefaultConfig())
	bad := []ProberConfig{
		{NoiseFrac: -0.1, ResponseProb: 1, MessagesPerProbe: 2},
		{NoiseFrac: 0, ResponseProb: 0, MessagesPerProbe: 2},
		{NoiseFrac: 0, ResponseProb: 1, MessagesPerProbe: 0},
	}
	for i, cfg := range bad {
		if _, err := NewProber(m, cfg, rng, nil); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}
