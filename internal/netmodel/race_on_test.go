//go:build race

package netmodel

// raceEnabled gates allocation-count assertions, which the race
// runtime's instrumentation would spoil.
const raceEnabled = true
