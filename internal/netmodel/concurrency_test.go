package netmodel

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"asap/internal/asgraph"
	"asap/internal/cluster"
	"asap/internal/sim"
)

// TestModelConcurrentLookups hammers the sharded cluster-pair cache from
// many goroutines while cache-dropping mutations interleave: misses, hits,
// SetCondition and ResetConditions all race. Run under -race this proves
// the striped locking; the final pass proves the cache converges back to
// ground truth after the churn stops.
func TestModelConcurrentLookups(t *testing.T) {
	m, rng := testModel(t, 250, 2000, 77, DefaultConfig())
	pop := m.Population()

	// Pre-pick host pairs and a transit AS to impair so goroutines don't
	// share the test RNG.
	type pair struct{ a, b cluster.HostID }
	pairs := make([]pair, 128)
	for i := range pairs {
		pairs[i] = pair{
			a: cluster.HostID(rng.Intn(pop.NumHosts())),
			b: cluster.HostID(rng.Intn(pop.NumHosts())),
		}
	}
	var victim asgraph.ASN
	for _, asn := range m.Graph().ASNs() {
		if m.Graph().Node(asn).Tier != asgraph.TierStub {
			victim = asn
			break
		}
	}

	const readers = 4
	var wg sync.WaitGroup

	// Mutator: flip a condition on and off, and periodically reset, so
	// readers see miss, hit and cache-drop interleavings. Bounded (not
	// loop-until-stopped) so the test stays fast on single-core runners.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 90; i++ {
			switch i % 3 {
			case 0:
				m.SetCondition(victim, Condition{ExtraOneWay: 50 * time.Millisecond, LossRate: 0.01})
			case 1:
				m.SetCondition(victim, Condition{})
			case 2:
				m.ResetConditions()
			}
			runtime.Gosched()
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for rep := 0; rep < 5; rep++ {
				for _, p := range pairs {
					if _, ok := m.HostRTT(p.a, p.b); !ok {
						continue
					}
					m.HostLoss(p.a, p.b)
				}
			}
		}(r)
	}
	wg.Wait()

	// After churn: cached answers must equal a fresh computation.
	m.ResetConditions()
	for _, p := range pairs[:64] {
		r1, ok1 := m.HostRTT(p.a, p.b)
		r2, ok2 := m.HostRTT(p.a, p.b)
		if ok1 != ok2 || r1 != r2 {
			t.Fatalf("cache diverged for %d-%d: %v,%v vs %v,%v", p.a, p.b, r1, ok1, r2, ok2)
		}
	}
}

// TestProberConcurrentCallers checks that one Prober and its WithCounters
// views can be driven from many goroutines (the close-set construction
// fans out this way), and that message accounting stays exact.
func TestProberConcurrentCallers(t *testing.T) {
	m, rng := testModel(t, 200, 1500, 78, DefaultConfig())
	pop := m.Population()
	p, err := NewProber(m, DefaultProberConfig(), rng.Split(), nil)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const probesPer = 400
	var wg sync.WaitGroup
	ctrs := make([]*sim.Counters, workers)
	for w := 0; w < workers; w++ {
		ctrs[w] = sim.NewCounters()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Half the workers share the prober's stream via WithCounters;
			// the other half use private sub-seeded streams via WithRNG.
			pw := p.WithCounters(ctrs[w])
			if w%2 == 1 {
				pw = pw.WithRNG(sim.NewRNG(sim.SubSeed(42, uint64(w))))
			}
			for i := 0; i < probesPer; i++ {
				a := cluster.HostID((w*probesPer + i) % pop.NumHosts())
				b := cluster.HostID((w + i*7) % pop.NumHosts())
				pw.HostRTT(a, b)
			}
		}(w)
	}
	wg.Wait()

	for w, ctr := range ctrs {
		want := int64(probesPer) * p.MessagesPerProbe
		if got := ctr.Get("probe.host_rtt"); got != want {
			t.Fatalf("worker %d: probe accounting = %d, want %d", w, got, want)
		}
	}
}

// TestProberWithRNGDeterministic verifies that identical sub-seeded
// streams yield identical noisy measurements regardless of what other
// probers drew in between — the property the parallel eval harness
// depends on.
func TestProberWithRNGDeterministic(t *testing.T) {
	m, rng := testModel(t, 200, 1500, 79, DefaultConfig())
	pop := m.Population()
	p, err := NewProber(m, DefaultProberConfig(), rng.Split(), nil)
	if err != nil {
		t.Fatal(err)
	}

	measure := func(seed int64) []time.Duration {
		pw := p.WithRNG(sim.NewRNG(seed))
		out := make([]time.Duration, 0, 64)
		for i := 0; i < 64; i++ {
			a := cluster.HostID(i % pop.NumHosts())
			b := cluster.HostID((i * 13) % pop.NumHosts())
			r, ok := pw.HostRTT(a, b)
			if !ok {
				r = -1
			}
			out = append(out, r)
		}
		return out
	}

	first := measure(sim.SubSeed(7, 3))
	// Perturb the shared stream in between; the sub-seeded stream must not
	// be affected.
	for i := 0; i < 100; i++ {
		p.HostRTT(cluster.HostID(i%pop.NumHosts()), cluster.HostID((i*3)%pop.NumHosts()))
	}
	second := measure(sim.SubSeed(7, 3))
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("sub-seeded measurement %d diverged: %v vs %v", i, first[i], second[i])
		}
	}
}
