package netmodel

import (
	"fmt"
	"sync"
	"time"

	"asap/internal/cluster"
	"asap/internal/sim"
)

// proberRNG serializes draws from one sim.RNG stream so a Prober (and all
// its WithCounters views, which share the stream) is safe for concurrent
// callers. Concurrent callers still interleave nondeterministically on a
// shared stream; callers that need reproducible parallel measurements
// derive a private stream per unit of work with WithRNG.
type proberRNG struct {
	mu  sync.Mutex
	rng *sim.RNG
}

func (p *proberRNG) Bool(prob float64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rng.Bool(prob)
}

func (p *proberRNG) Normal(mean, stddev float64) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rng.Normal(mean, stddev)
}

// Prober is the measurement interface protocol actors are allowed to use.
// It models the paper's tooling: King for host-pair RTT estimation
// (DNS-based, noisy, with non-responses) and ping for loss sampling. Every
// measurement increments message counters, which the evaluation charges to
// the selection method (Figure 18).
//
// A Prober is safe for concurrent callers: counters are internally
// synchronized and noise draws are serialized on the underlying stream.
// For deterministic parallel measurement, derive per-work-unit probers
// with WithRNG.
type Prober struct {
	m *Model
	// NoiseFrac is the relative RTT measurement error (King reports ~10%
	// typical error against direct measurement).
	NoiseFrac float64
	// ResponseProb is the probability a measurement succeeds; the paper's
	// King campaign resolved 1,498,749 of 2,130,140 pairs (~70%).
	ResponseProb float64
	// MessagesPerProbe is the message cost charged per measurement
	// (a King estimate costs a pair of recursive DNS queries).
	MessagesPerProbe int64

	rng      *proberRNG
	counters *sim.Counters
}

// ProberConfig configures a Prober.
type ProberConfig struct {
	NoiseFrac        float64
	ResponseProb     float64
	MessagesPerProbe int64
}

// DefaultProberConfig mirrors the paper's measured King behaviour.
func DefaultProberConfig() ProberConfig {
	return ProberConfig{
		NoiseFrac:        0.08,
		ResponseProb:     0.98,
		MessagesPerProbe: 2,
	}
}

// NewProber builds a Prober over the ground-truth model. counters may be
// nil when accounting is not needed.
func NewProber(m *Model, cfg ProberConfig, rng *sim.RNG, counters *sim.Counters) (*Prober, error) {
	if cfg.NoiseFrac < 0 || cfg.NoiseFrac >= 1 {
		return nil, fmt.Errorf("netmodel: NoiseFrac must be in [0,1), got %g", cfg.NoiseFrac)
	}
	if cfg.ResponseProb <= 0 || cfg.ResponseProb > 1 {
		return nil, fmt.Errorf("netmodel: ResponseProb must be in (0,1], got %g", cfg.ResponseProb)
	}
	if cfg.MessagesPerProbe < 1 {
		return nil, fmt.Errorf("netmodel: MessagesPerProbe must be >= 1, got %d", cfg.MessagesPerProbe)
	}
	if counters == nil {
		counters = sim.NewCounters()
	}
	return &Prober{
		m:                m,
		NoiseFrac:        cfg.NoiseFrac,
		ResponseProb:     cfg.ResponseProb,
		MessagesPerProbe: cfg.MessagesPerProbe,
		rng:              &proberRNG{rng: rng},
		counters:         counters,
	}, nil
}

// Counters exposes the prober's message accounting.
func (p *Prober) Counters() *sim.Counters { return p.counters }

// WithCounters returns a prober sharing this one's model, noise model and
// random stream but charging messages to ctr — used to attribute probe
// cost to a specific session or surrogate.
func (p *Prober) WithCounters(ctr *sim.Counters) *Prober {
	if ctr == nil {
		ctr = sim.NewCounters()
	}
	cp := *p
	cp.counters = ctr
	return &cp
}

// WithRNG returns a prober sharing this one's model, noise model and
// counters but drawing noise from a private stream seeded by rng. Parallel
// workers give each unit of work its own sub-seeded stream (sim.SubSeed)
// so measurement noise is independent of scheduling order.
func (p *Prober) WithRNG(rng *sim.RNG) *Prober {
	cp := *p
	cp.rng = &proberRNG{rng: rng}
	return &cp
}

func (p *Prober) noisy(rtt time.Duration) time.Duration {
	if p.NoiseFrac == 0 {
		return rtt
	}
	f := 1 + p.rng.Normal(0, p.NoiseFrac)
	if f < 0.1 {
		f = 0.1
	}
	return time.Duration(float64(rtt) * f)
}

// HostRTT measures the RTT between two hosts. ok is false when the
// measurement got no response (the probe is still charged).
func (p *Prober) HostRTT(a, b cluster.HostID) (time.Duration, bool) {
	p.counters.Add("probe.host_rtt", p.MessagesPerProbe)
	if !p.rng.Bool(p.ResponseProb) {
		return 0, false
	}
	rtt, ok := p.m.HostRTT(a, b)
	if !ok {
		return 0, false
	}
	return p.noisy(rtt), true
}

// ClusterRTT measures delegate-to-delegate RTT between clusters.
func (p *Prober) ClusterRTT(a, b cluster.ClusterID) (time.Duration, bool) {
	p.counters.Add("probe.cluster_rtt", p.MessagesPerProbe)
	if !p.rng.Bool(p.ResponseProb) {
		return 0, false
	}
	rtt, ok := p.m.ClusterRTT(a, b)
	if !ok {
		return 0, false
	}
	return p.noisy(rtt), true
}

// ClusterLoss samples the loss rate between two clusters with a short
// ping train.
func (p *Prober) ClusterLoss(a, b cluster.ClusterID) (float64, bool) {
	p.counters.Add("probe.cluster_loss", p.MessagesPerProbe)
	if !p.rng.Bool(p.ResponseProb) {
		return 0, false
	}
	return p.m.ClusterLoss(a, b)
}

// ClusterProbe is one result of a batched close-set measurement round:
// the RTT measurement toward one target and, when the RTT came back
// under the round's latency threshold, the follow-up loss sample.
type ClusterProbe struct {
	RTT    time.Duration
	RTTOK  bool
	Loss   float64
	LossOK bool
}

// ProbeClusterSet measures owner→targets[i] RTT for every target, and
// loss for the targets whose measured RTT landed under latT — the
// close-set construction pattern (Fig. 9): a cluster too far away is
// never worth a loss train. The ground truth for the whole set is
// fetched in one vectorized cache visit (ClusterStatsBatch) before any
// noise is drawn, and the per-target draw order — response Bool, noise
// Normal, then the conditional loss-response Bool — is exactly the
// sequence the scalar ClusterRTT/ClusterLoss calls consume, so a given
// RNG stream produces bit-identical results either way. Message
// counters are charged the same totals in two bulk adds. out must be
// at least len(targets) long.
func (p *Prober) ProbeClusterSet(owner cluster.ClusterID, targets []cluster.ClusterID, latT time.Duration, out []ClusterProbe) {
	sc := batchScratchPool.Get().(*batchScratch)
	if cap(sc.pairs) < len(targets) {
		sc.pairs = make([]PairStat, len(targets))
	}
	sc.pairs = sc.pairs[:len(targets)]
	p.m.ClusterStatsBatch(owner, targets, sc.pairs)
	var nRTT, nLoss int64
	for i := range targets {
		st := sc.pairs[i]
		pr := ClusterProbe{}
		nRTT++
		if p.rng.Bool(p.ResponseProb) && st.OK {
			pr.RTT = p.noisy(st.RTT)
			pr.RTTOK = true
		}
		if pr.RTTOK && pr.RTT < latT {
			nLoss++
			if p.rng.Bool(p.ResponseProb) {
				pr.Loss = st.Loss
				pr.LossOK = true
			}
		}
		out[i] = pr
	}
	batchScratchPool.Put(sc)
	p.counters.Add("probe.cluster_rtt", nRTT*p.MessagesPerProbe)
	if nLoss > 0 {
		p.counters.Add("probe.cluster_loss", nLoss*p.MessagesPerProbe)
	}
}
