package netmodel

import (
	"sync"
	"time"

	"asap/internal/cluster"
)

// Vectorized ground-truth lookups (DESIGN.md §15). The scalar
// ClusterRTT/HostRTT path costs one shard visit — lock, probe, unlock —
// per pair, plus one condMu round trip per cache miss. A candidate set
// evaluation (close-set construction, relay scoring) asks about tens of
// pairs that share one endpoint, so the batch forms visit each touched
// cache shard once per phase and compute every miss under a single
// condition snapshot. Results are identical to the scalar calls by
// construction: hits return the cached value, misses run the same
// asPathLocked walk, and stores carry the same generation check
// clusterPath uses, so a racing SetCondition discards the whole fill.

// PairStat is one batched ground-truth measurement: the RTT and loss
// between the batch's owner endpoint and one target. OK is false for
// disconnected pairs.
type PairStat struct {
	RTT  time.Duration
	Loss float64
	OK   bool
}

// batchScratch recycles the per-call working set so steady-state batch
// lookups allocate nothing.
type batchScratch struct {
	keys     []uint64
	shardIdx []uint8
	stats    []pathStats
	targets  []cluster.ClusterID
	idx      []int
	pairs    []PairStat
}

var batchScratchPool = sync.Pool{New: func() interface{} { return new(batchScratch) }}

func (sc *batchScratch) grow(n int) {
	if cap(sc.keys) < n {
		sc.keys = make([]uint64, n)
		sc.shardIdx = make([]uint8, n)
		sc.stats = make([]pathStats, n)
	}
	sc.keys = sc.keys[:n]
	sc.shardIdx = sc.shardIdx[:n]
	sc.stats = sc.stats[:n]
}

// ClusterStatsBatch fills out[i] with the ground-truth stats between
// owner and targets[i], equivalent to ClusterRTT+ClusterLoss per pair
// but with each touched cache shard visited once for the read pass and
// once for the (miss-only) store pass, and all misses computed under
// one condMu snapshot. out must be at least len(targets) long.
func (m *Model) ClusterStatsBatch(owner cluster.ClusterID, targets []cluster.ClusterID, out []PairStat) {
	sc := batchScratchPool.Get().(*batchScratch)
	defer batchScratchPool.Put(sc)
	sc.grow(len(targets))

	// Key phase. A zero key marks a slot already resolved: same-cluster
	// pairs here, cache hits after the read pass. (pairKey is zero only
	// when both cluster IDs are zero — the same-cluster case.)
	var used, missed [cacheShards]bool
	pending := 0
	for i, t := range targets {
		if t == owner {
			sc.keys[i] = 0
			sc.stats[i] = pathStats{rtt: 2 * m.cfg.IntraASOneWay, ok: true}
			continue
		}
		k := pairKey(owner, t)
		sc.keys[i] = k
		sc.shardIdx[i] = uint8((k ^ k>>32) % cacheShards)
		used[sc.shardIdx[i]] = true
		pending++
	}

	// Read pass: one RLock per touched shard.
	if pending > 0 {
		pending = 0
		for s := 0; s < cacheShards; s++ {
			if !used[s] {
				continue
			}
			sh := &m.shards[s]
			sh.mu.RLock()
			for i := range targets {
				if sc.keys[i] == 0 || sc.shardIdx[i] != uint8(s) {
					continue
				}
				if st, ok := sh.m[sc.keys[i]]; ok {
					sc.stats[i] = st
					sc.keys[i] = 0
				} else {
					missed[s] = true
					pending++
				}
			}
			sh.mu.RUnlock()
		}
	}

	// Compute pass: every miss under one condition snapshot. condGen
	// cannot move while the read lock is held (mutations hold the write
	// lock across the bump), so the generation read inside is the one
	// all computed values belong to.
	var gen uint64
	if pending > 0 {
		ownerAS := m.pop.Cluster(owner).AS
		m.condMu.RLock()
		gen = m.condGen.Load()
		for i := range targets {
			if sc.keys[i] != 0 {
				sc.stats[i] = m.asPathLocked(ownerAS, m.pop.Cluster(targets[i]).AS)
			}
		}
		m.condMu.RUnlock()

		// Store pass: one Lock per shard that had misses, skipped
		// entirely when a condition mutation raced the compute.
		for s := 0; s < cacheShards; s++ {
			if !missed[s] {
				continue
			}
			sh := &m.shards[s]
			sh.mu.Lock()
			if m.condGen.Load() == gen {
				for i := range targets {
					if sc.keys[i] != 0 && sc.shardIdx[i] == uint8(s) {
						sh.m[sc.keys[i]] = sc.stats[i]
					}
				}
			}
			sh.mu.Unlock()
		}
	}

	for i := range targets {
		out[i] = PairStat{RTT: sc.stats[i].rtt, Loss: sc.stats[i].loss, OK: sc.stats[i].ok}
	}
}

// HostStatsBatch fills out[i] with the ground-truth stats between host
// a and hosts bs[i] — HostRTT+HostLoss per pair, resolved through one
// ClusterStatsBatch visit. out must be at least len(bs) long.
func (m *Model) HostStatsBatch(a cluster.HostID, bs []cluster.HostID, out []PairStat) {
	sc := batchScratchPool.Get().(*batchScratch)
	defer batchScratchPool.Put(sc)
	sc.targets = sc.targets[:0]
	sc.idx = sc.idx[:0]

	ha := m.pop.Host(a)
	for i, b := range bs {
		if b == a {
			out[i] = PairStat{OK: true}
			continue
		}
		hb := m.pop.Host(b)
		access := 2 * (ha.AccessDelay + hb.AccessDelay)
		if hb.Cluster == ha.Cluster {
			out[i] = PairStat{RTT: access, OK: true}
			continue
		}
		// Park the access term in the output slot; the scatter below
		// adds the cluster-path RTT on top.
		out[i] = PairStat{RTT: access}
		sc.targets = append(sc.targets, hb.Cluster)
		sc.idx = append(sc.idx, i)
	}
	if len(sc.targets) == 0 {
		return
	}
	if cap(sc.pairs) < len(sc.targets) {
		sc.pairs = make([]PairStat, len(sc.targets))
	}
	sc.pairs = sc.pairs[:len(sc.targets)]
	m.ClusterStatsBatch(ha.Cluster, sc.targets, sc.pairs)
	for j, i := range sc.idx {
		if !sc.pairs[j].OK {
			out[i] = PairStat{}
			continue
		}
		out[i] = PairStat{RTT: sc.pairs[j].RTT + out[i].RTT, Loss: sc.pairs[j].Loss, OK: true}
	}
}
