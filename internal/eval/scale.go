package eval

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"asap/internal/asgraph"
	"asap/internal/core"
	"asap/internal/sim"
	"asap/internal/transport"
)

// Scale harness: stands up a synthetic 10^4..10^6-node virtual deployment
// with churn and a call workload, runs it on the sharded conservative-
// lookahead runner, and reports protocol outcomes plus resource numbers.
//
// The deployment is a pure function of (config, seed) and — critically —
// of NOTHING else: every join, leave, rejoin and call is anchored at an
// identity-derived absolute virtual time, pairwise latencies carry an
// identity-hashed nanosecond jitter so no two arrivals at a shared server
// tie, and the workload draws no randomness whose order could depend on
// the shard count. That is what makes the golden test meaningful: the
// merged outcome lines must be byte-identical at 1, 4 and 16 shards.
//
// Topology (synthetic, latency assigned by class rather than coordinates):
//
//	          core (AS 1, tier 1)
//	         /  |  \
//	   transit ASes (AS 10+t)          — cfg.Transits of them
//	    /  |  \       \
//	 stub clusters   relay clusters    — stub c is a customer of transit
//	 (AS 100+c)      (AS 100+C+j)        c%T; relay clusters are customers
//	                                     of EVERY transit (multihomed), so
//	                                     they sit 8 ms from everyone.
//
// One-way latency classes: same cluster 2 ms; same transit, or either end
// in a relay cluster, 8 ms; cross-transit 50 ms; bootstrap links 15 ms.
// With LatT = 90 ms a cross-transit call is latent (direct RTT ~100 ms)
// and its only sub-threshold relays are the multihomed clusters
// (est ~= 16 + 16 + overlay.RelayRTT = 72 ms) — the fig. 17 relay-rescue
// shape, reproduced at whatever population the ladder asks for.
//
// Sharding: nodes are placed cluster % Shards, so same-cluster traffic
// (the 2 ms class) never crosses a shard and the minimum cross-shard
// latency — the conservative lookahead bound — is scaleLookahead = 8 ms.

const (
	scaleLookahead   = 8 * time.Millisecond
	scaleSameCluster = 2 * time.Millisecond
	scaleSameTransit = 8 * time.Millisecond
	scaleCross       = 50 * time.Millisecond
	scaleBootstrap   = 15 * time.Millisecond
	// scaleJitterMask bounds the per-pair latency hash jitter to <1024 ns,
	// well under the 2 us join stagger, so jitter can de-tie concurrent
	// arrivals but never reorder distinct scheduled actions.
	scaleJitterMask = 1023
	// scaleLatT makes cross-transit calls latent and relay paths viable.
	scaleLatT = 90 * time.Millisecond
)

// ScaleConfig sizes one scale-harness deployment.
type ScaleConfig struct {
	// Nodes is the total resident population, bootstrap excluded.
	Nodes int
	// Shards is the conservative-runner shard count (1 = sequential).
	Shards int
	// Clusters is the number of regular stub clusters (>= Transits+1 so
	// cross- and same-transit pairs both exist). 0 picks a scale-dependent
	// default.
	Clusters int
	// Transits is the number of transit ASes. 0 defaults to 4.
	Transits int
	// RelayClusters is the number of multihomed relay clusters. 0
	// defaults to 4. Their seed members join first so every later
	// surrogate's close set includes them.
	RelayClusters int
	// Calls is the size of the call workload. Callers and callees are
	// plain members; 3 of 4 calls are cross-transit (latent), 1 of 4
	// same-transit (direct-quality).
	Calls int
	// Leavers is how many nodes churn out mid-workload (closed and
	// unbound); each rejoins 300 ms later under a fresh address. Every
	// fourth leaver is a cluster's founding member — i.e. its surrogate —
	// forcing lease expiry and member re-election on the live paths.
	Leavers int
	// LeaseTTL is the bootstrap surrogate lease (0 defaults to 2 s, short
	// enough that re-election succeeds inside the call window).
	LeaseTTL time.Duration
	// Seed roots every node's retry-jitter stream.
	Seed int64
	// RecordOutcomes retains the per-call golden lines in the report.
	// Ladder runs at 10^6 switch it off to save the strings.
	RecordOutcomes bool
	// MeasureBytes audits resident bytes per node (forces two GC cycles;
	// wall-time noise only, never part of the golden output).
	MeasureBytes bool
}

func (c *ScaleConfig) defaults() {
	if c.Transits == 0 {
		c.Transits = 4
	}
	if c.RelayClusters == 0 {
		c.RelayClusters = 4
	}
	if c.Clusters == 0 {
		c.Clusters = c.Nodes / 250
		if c.Clusters < 2*c.Transits {
			c.Clusters = 2 * c.Transits
		}
		if c.Clusters > 2048 {
			c.Clusters = 2048
		}
	}
	// Round clusters up to a transit multiple: the same-transit call
	// pairing (ca, ca+Transits mod Clusters) needs the wrap to preserve
	// transit class.
	if r := c.Clusters % c.Transits; r != 0 {
		c.Clusters += c.Transits - r
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.LeaseTTL == 0 {
		c.LeaseTTL = 2 * time.Second
	}
}

// ScaleReport is one deployment's outcome.
type ScaleReport struct {
	Nodes    int
	Shards   int
	Clusters int
	// Events is the total executed virtual-event count across shards —
	// the events/sec numerator for the bench harness.
	Events uint64
	// Horizon is the virtual time the deployment ran to.
	Horizon time.Duration
	// Calls breakdown. Latent counts calls whose direct RTT >= LatT;
	// Relayed counts those the protocol rescued through a relay.
	Calls, Latent, Relayed, Degraded, Failed int
	// MeanRelayEst averages EstRTT over relayed calls (fig. 17's quality
	// axis extended to this population).
	MeanRelayEst time.Duration
	// BytesPerNode is the post-run resident heap delta divided by Nodes
	// (0 unless MeasureBytes).
	BytesPerNode float64
	// Outcomes is the golden output: one line per call in workload order
	// (nil unless RecordOutcomes).
	Outcomes []string
}

// scaleWorld is the precomputed identity plan: every address the
// deployment will ever bind, with its cluster/transit/shard placement.
type scaleWorld struct {
	cfg      ScaleConfig
	graph    *asgraph.Graph
	prefixes []core.PrefixOrigin
	// cluster/transit/relay placement per node index.
	clusterOf []int // node index -> cluster (regular 0..C-1, relay C..C+R-1)
	addrOf    []transport.Addr
	rejoinOf  []transport.Addr // non-empty for leavers
	ipOf      []string
	// info resolves any bindable address for the latency fn and shardOf.
	info map[transport.Addr]scaleAddrInfo
	bs   transport.Addr
}

type scaleAddrInfo struct {
	cluster int
	transit int // -1 for relay clusters and the bootstrap
	shard   int
}

// clusterTransit maps a cluster to its transit (-1 for relay clusters).
func (w *scaleWorld) clusterTransit(c int) int {
	if c >= w.cfg.Clusters {
		return -1
	}
	return c % w.cfg.Transits
}

// scaleHash is FNV-1a over the two address strings — the per-pair jitter
// source. Allocation-free: latency runs on every message.
func scaleHash(a, b transport.Addr) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(a); i++ {
		h = (h ^ uint64(a[i])) * 1099511628211
	}
	h = (h ^ '|') * 1099511628211
	for i := 0; i < len(b); i++ {
		h = (h ^ uint64(b[i])) * 1099511628211
	}
	return h
}

// buildScaleWorld lays out the AS graph, prefixes and the full address
// plan for cfg. Node i's cluster: the first RelayClusters indices seed
// the relay clusters (so they elect first and appear in everyone's close
// set); the rest cycle through the regular clusters.
func buildScaleWorld(cfg ScaleConfig) *scaleWorld {
	cfg.defaults()
	w := &scaleWorld{
		cfg:       cfg,
		clusterOf: make([]int, cfg.Nodes),
		addrOf:    make([]transport.Addr, cfg.Nodes),
		rejoinOf:  make([]transport.Addr, cfg.Nodes),
		ipOf:      make([]string, cfg.Nodes),
		info:      make(map[transport.Addr]scaleAddrInfo, cfg.Nodes+cfg.Leavers+1),
		bs:        "bs",
	}
	b := asgraph.NewBuilder()
	b.AddNode(asgraph.Node{ASN: 1, Tier: asgraph.TierT1})
	for t := 0; t < cfg.Transits; t++ {
		b.AddNode(asgraph.Node{ASN: asgraph.ASN(10 + t), Tier: asgraph.TierTransit})
		b.AddEdge(asgraph.ASN(10+t), 1, asgraph.RelC2P)
	}
	total := cfg.Clusters + cfg.RelayClusters
	for c := 0; c < total; c++ {
		asn := asgraph.ASN(100 + c)
		b.AddNode(asgraph.Node{ASN: asn, Tier: asgraph.TierStub})
		if c < cfg.Clusters {
			b.AddEdge(asn, asgraph.ASN(10+c%cfg.Transits), asgraph.RelC2P)
		} else {
			for t := 0; t < cfg.Transits; t++ {
				b.AddEdge(asn, asgraph.ASN(10+t), asgraph.RelC2P)
			}
		}
		w.prefixes = append(w.prefixes, core.PrefixOrigin{
			Prefix: scaleClusterPrefix(c), ASN: asn,
		})
	}
	w.graph = b.Build()
	w.info[w.bs] = scaleAddrInfo{cluster: -1, transit: -1, shard: 0}

	rank := make([]int, total) // members placed so far per cluster
	for i := 0; i < cfg.Nodes; i++ {
		c := scaleClusterOfIndex(cfg, i)
		w.clusterOf[i] = c
		addr := transport.Addr(fmt.Sprintf("n%07d", i))
		w.addrOf[i] = addr
		w.ipOf[i] = scaleMemberIP(c, rank[c])
		rank[c]++
		w.info[addr] = scaleAddrInfo{cluster: c, transit: w.clusterTransit(c), shard: c % cfg.Shards}
	}
	for _, idx := range scaleLeavers(cfg) {
		re := transport.Addr(fmt.Sprintf("n%07d.r", idx))
		w.rejoinOf[idx] = re
		w.info[re] = w.info[w.addrOf[idx]]
	}
	return w
}

// scaleLeavers picks the churn set: spread across the population,
// skipping relay seeds (the relay clusters must stay up for the latent
// calls). Every fourth pick is a cluster's founding member — its
// surrogate — to exercise lease expiry and member re-election. Shared by
// the world builder (rejoin addresses) and the planner (timetable).
func scaleLeavers(cfg ScaleConfig) []int {
	if cfg.Leavers <= 0 {
		return nil
	}
	stride := (cfg.Nodes - cfg.RelayClusters) / cfg.Leavers
	if stride < 1 {
		stride = 1
	}
	var out []int
	seen := make(map[int]bool, cfg.Leavers)
	for j := 0; len(out) < cfg.Leavers && j < 4*cfg.Leavers; j++ {
		var idx int
		if j%4 == 0 {
			idx = cfg.RelayClusters + (j/4)%cfg.Clusters // a surrogate
		} else {
			idx = cfg.RelayClusters + (j*stride+7)%(cfg.Nodes-cfg.RelayClusters)
		}
		if seen[idx] {
			continue
		}
		seen[idx] = true
		out = append(out, idx)
	}
	return out
}

func scaleClusterOfIndex(cfg ScaleConfig, i int) int {
	if i < cfg.RelayClusters {
		return cfg.Clusters + i
	}
	return (i - cfg.RelayClusters) % cfg.Clusters
}

// scaleClusterPrefix gives cluster c a private /16, one per cluster, so a
// cluster can hold up to ~65k members.
func scaleClusterPrefix(c int) string {
	return fmt.Sprintf("%d.%d.0.0/16", 10+c>>8, c&255)
}

// scaleMemberIP is the r-th member's address inside cluster c's /16.
func scaleMemberIP(c, r int) string {
	h := r + 1
	return fmt.Sprintf("%d.%d.%d.%d", 10+c>>8, c&255, h>>8, h&255)
}

// latency is the deployment's one-way delay function (class base plus
// identity-hashed sub-microsecond jitter; see the class table above).
func (w *scaleWorld) latency(from, to transport.Addr) time.Duration {
	j := time.Duration(scaleHash(from, to) & scaleJitterMask)
	fi, fok := w.info[from]
	ti, tok := w.info[to]
	if !fok || !tok || fi.cluster == -1 || ti.cluster == -1 {
		return scaleBootstrap + j
	}
	switch {
	case fi.cluster == ti.cluster:
		return scaleSameCluster + j
	case fi.transit == -1 || ti.transit == -1 || fi.transit == ti.transit:
		return scaleSameTransit + j
	default:
		return scaleCross + j
	}
}

func (w *scaleWorld) shardOf(a transport.Addr) int {
	if ai, ok := w.info[a]; ok {
		return ai.shard
	}
	return 0
}

// scaleCall is one planned workload call.
type scaleCall struct {
	at             time.Duration
	caller, callee int // node indices
}

// scalePlan fixes the whole timetable. Everything below is arithmetic on
// identities — no RNG — so the plan is independent of shard count.
type scalePlan struct {
	joinAt  []time.Duration
	joinEnd time.Duration
	leavers []int // node indices that churn out
	leaveAt []time.Duration
	calls   []scaleCall
	horizon time.Duration
}

const (
	scaleJoinStep  = 2 * time.Microsecond
	scaleCallStep  = 797 * time.Microsecond
	scaleLeaveStep = 1571 * time.Microsecond
	scaleRejoin    = 300 * time.Millisecond
)

func planScale(w *scaleWorld) *scalePlan {
	cfg := w.cfg
	p := &scalePlan{joinAt: make([]time.Duration, cfg.Nodes)}
	for i := 0; i < cfg.Nodes; i++ {
		p.joinAt[i] = 10*time.Millisecond + time.Duration(i)*scaleJoinStep
	}
	p.joinEnd = p.joinAt[cfg.Nodes-1] + 500*time.Millisecond // worst join ~2 RPCs at 15 ms legs + slack
	workStart := p.joinEnd + 100*time.Millisecond

	p.leavers = scaleLeavers(cfg)
	leaverSet := make(map[int]bool, len(p.leavers))
	for j, idx := range p.leavers {
		leaverSet[idx] = true
		p.leaveAt = append(p.leaveAt,
			workStart+37*time.Microsecond+time.Duration(j)*scaleLeaveStep)
	}

	// Calls: caller from cluster ca, callee from cluster cb; k%4 == 0 is
	// same-transit (direct-quality; cluster offset Transits keeps the
	// transit class because Clusters is a transit multiple), the rest
	// cross-transit (latent; the offset is never a multiple of Transits,
	// so the transit class always changes). memberAt(c, r) =
	// RelayClusters + c + r*Clusters is the r-th non-founding member of
	// cluster c. Leavers never originate calls (their task could die
	// mid-call); dead callees are fair game — a failed call is an
	// outcome too.
	memberAt := func(c, r int) int { return cfg.RelayClusters + c + r*cfg.Clusters }
	maxRank := (cfg.Nodes - cfg.RelayClusters) / cfg.Clusters
	liveMember := func(c, r int) int {
		for tries := 0; tries < maxRank; tries++ {
			idx := memberAt(c, 1+(r-1+tries)%maxRank)
			if idx < cfg.Nodes && !leaverSet[idx] {
				return idx
			}
		}
		return -1
	}
	for k := 0; k < cfg.Calls; k++ {
		ca := k % cfg.Clusters
		var cb int
		if k%4 == 0 {
			cb = (ca + cfg.Transits) % cfg.Clusters
		} else {
			span := cfg.Clusters/cfg.Transits - 1
			if span < 1 {
				span = 1
			}
			off := 1 + k%(cfg.Transits-1) + cfg.Transits*((k/7)%span)
			cb = (ca + off) % cfg.Clusters
		}
		caller := liveMember(ca, 1+(k/cfg.Clusters)%maxRank)
		callee := memberAt(cb, 1+(k/cfg.Clusters+1)%maxRank)
		if callee >= cfg.Nodes {
			callee = memberAt(cb, 1)
		}
		if caller < 0 || callee >= cfg.Nodes || caller == callee {
			continue
		}
		p.calls = append(p.calls, scaleCall{
			at:     workStart + 191*time.Microsecond + time.Duration(k)*scaleCallStep,
			caller: caller, callee: callee,
		})
	}

	end := workStart
	if n := len(p.calls); n > 0 {
		end = p.calls[n-1].at
	}
	if n := len(p.leavers); n > 0 {
		if t := p.leaveAt[n-1] + scaleRejoin; t > end {
			end = t
		}
	}
	// Generous drain margin: retries + re-elections + lease expiry all
	// finish well inside it.
	p.horizon = end + cfg.LeaseTTL + 5*time.Second
	return p
}

// scaleOutcome is one call's recorded result, written only by its own
// caller task (no locks: the slice is preallocated and each index has a
// single writer; Run's completion orders the writes before the read).
type scaleOutcome struct {
	done    bool
	relay   transport.Addr
	est     time.Duration
	direct  time.Duration
	degr    bool
	voiceOK bool
	err     string
}

// RunScale executes one scale deployment and returns its report. The
// golden contract: for a fixed config-minus-Shards and seed, Outcomes is
// byte-identical at every shard count.
func RunScale(cfg ScaleConfig) (*ScaleReport, error) {
	cfg.defaults()
	if cfg.Nodes < cfg.RelayClusters+2*cfg.Clusters {
		return nil, fmt.Errorf("eval: scale needs >= %d nodes for %d clusters (got %d)",
			cfg.RelayClusters+2*cfg.Clusters, cfg.Clusters, cfg.Nodes)
	}
	if cfg.Transits < 2 {
		return nil, fmt.Errorf("eval: scale needs >= 2 transits for cross-transit calls (got %d)", cfg.Transits)
	}
	if cfg.Clusters <= cfg.Transits {
		return nil, fmt.Errorf("eval: scale needs clusters > transits (%d <= %d)", cfg.Clusters, cfg.Transits)
	}
	w := buildScaleWorld(cfg)
	plan := planScale(w)

	var baseline uint64
	if cfg.MeasureBytes {
		baseline = scaleHeapBytes()
	}

	runner := sim.NewShardRunner(cfg.Shards, scaleLookahead)
	mem := transport.NewMem()
	defer func() { _ = mem.Close() }()
	mem.Latency = w.latency
	mem.EnableSharding(runner, w.shardOf)

	params := core.DefaultParams()
	params.K = 2
	params.LatT = scaleLatT

	bsClock := runner.Clock(0)
	var bsErr error
	bsClock.At(0, func() {
		_, bsErr = core.NewBootstrap(mem, w.bs, core.BootstrapConfig{
			Graph:    w.graph,
			Prefixes: w.prefixes,
			K:        params.K,
			LeaseTTL: cfg.LeaseTTL,
			Sched:    bsClock,
		})
	})

	// Joins, leaves, rejoins and calls are all scheduled as absolute-time
	// tasks on their owner shard's clock (Clock.At runs the callback as
	// its own task, so the blocking join RPCs are fine). nodes[idx] is
	// only ever touched from idx's own shard, so the slice needs no lock;
	// runner.Run's completion orders the final reads after every write.
	nodes := make([]*core.Node, cfg.Nodes)
	spawn := func(idx int, addr transport.Addr, at time.Duration) {
		clk := runner.Clock(w.shardOf(addr))
		clk.At(at, func() {
			n, err := core.NewNode(mem, addr, core.NodeConfig{
				IP:        w.ipOf[idx],
				Bootstrap: w.bs,
				Params:    params,
				Sched:     clk,
				Seed:      cfg.Seed,
			})
			if err == nil {
				nodes[idx] = n
			}
		})
	}
	for i := 0; i < cfg.Nodes; i++ {
		spawn(i, w.addrOf[i], plan.joinAt[i])
	}
	for j, idx := range plan.leavers {
		idx, at := idx, plan.leaveAt[j]
		clk := runner.Clock(w.shardOf(w.addrOf[idx]))
		clk.At(at, func() {
			if n := nodes[idx]; n != nil {
				n.Close()
				mem.Unbind(n.Addr())
				nodes[idx] = nil
			}
		})
		spawn(idx, w.rejoinOf[idx], at+scaleRejoin)
	}

	outcomes := make([]scaleOutcome, len(plan.calls))
	const frames = 320
	for k := range plan.calls {
		k := k
		call := plan.calls[k]
		clk := runner.Clock(w.shardOf(w.addrOf[call.caller]))
		clk.At(call.at, func() {
			o := &outcomes[k]
			o.done = true
			n := nodes[call.caller]
			if n == nil {
				o.err = "caller not joined"
				return
			}
			callee := w.addrOf[call.callee]
			choice, err := n.SetupCall(callee)
			if err != nil {
				o.err = err.Error()
				return
			}
			o.relay, o.est, o.direct, o.degr = choice.Relay, choice.EstRTT, choice.Direct, choice.Degraded
			if err := n.SendVoice(choice, callee, make([]byte, frames), 1); err != nil {
				o.err = err.Error()
				return
			}
			o.voiceOK = true
		})
	}

	runner.Run(plan.horizon)

	rep := &ScaleReport{
		Nodes:    cfg.Nodes,
		Shards:   cfg.Shards,
		Clusters: cfg.Clusters,
		Events:   runner.Executed(),
		Horizon:  plan.horizon,
		Calls:    len(plan.calls),
	}
	if bsErr != nil {
		return nil, fmt.Errorf("eval: scale bootstrap: %w", bsErr)
	}
	var relaySum time.Duration
	for k := range plan.calls {
		o := &outcomes[k]
		switch {
		case !o.done || o.err != "":
			rep.Failed++
		case o.degr:
			rep.Degraded++
		}
		if o.done && o.err == "" && o.direct >= scaleLatT {
			rep.Latent++
			if o.relay != "" {
				rep.Relayed++
				relaySum += o.est
			}
		}
		if cfg.RecordOutcomes {
			rep.Outcomes = append(rep.Outcomes, fmt.Sprintf(
				"call %d: %d->%d relay=%q est=%v direct=%v degraded=%v voice=%v err=%q",
				k, plan.calls[k].caller, plan.calls[k].callee,
				o.relay, o.est, o.direct, o.degr, o.voiceOK, o.err))
		}
	}
	if rep.Relayed > 0 {
		rep.MeanRelayEst = relaySum / time.Duration(rep.Relayed)
	}
	if cfg.MeasureBytes {
		after := scaleHeapBytes()
		if after > baseline {
			rep.BytesPerNode = float64(after-baseline) / float64(cfg.Nodes)
		}
	}
	return rep, nil
}

// scaleHeapBytes reads the live-heap size after settling the GC twice
// (the first cycle queues finalizers, the second collects what they
// release).
func scaleHeapBytes() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapAlloc
}

// GoldenDigest flattens the outcome lines for byte-comparison in tests
// and for the bench harness's reproducibility stamp.
func (r *ScaleReport) GoldenDigest() string {
	var sb strings.Builder
	for _, line := range r.Outcomes {
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "calls=%d latent=%d relayed=%d degraded=%d failed=%d meanRelayEst=%v\n",
		r.Calls, r.Latent, r.Relayed, r.Degraded, r.Failed, r.MeanRelayEst)
	return sb.String()
}
