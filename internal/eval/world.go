// Package eval is the experiment harness: it assembles complete simulated
// worlds, generates calling-session workloads, runs every relay-selection
// method, and regenerates each table and figure of the paper (see the
// per-experiment index in DESIGN.md).
package eval

import (
	"fmt"
	"time"

	"asap/internal/asgraph"
	"asap/internal/baseline"
	"asap/internal/bgp"
	"asap/internal/cluster"
	"asap/internal/core"
	"asap/internal/netmodel"
	"asap/internal/overlay"
	"asap/internal/sim"
	"asap/internal/stats"
)

// Profile is a world scale. The paper profile matches the measured 2005
// dataset: 20,955 ASes, 7,171 populated prefixes, 23,366 online delegate
// IPs (103,625 for the scalability figure), 100,000 sessions.
type Profile struct {
	Name     string
	ASes     int
	Hosts    int
	Sessions int
	// Seed drives all randomness for the profile.
	Seed int64
	// PopulatedFrac overrides the fraction of prefixes holding online
	// peers (0 = the cluster package default). The paper profile uses
	// 0.16 to land on ~7,171 populated prefixes as measured.
	PopulatedFrac float64
}

// Predefined profiles (see DESIGN.md section 6).
var (
	// Tiny is for unit tests.
	Tiny = Profile{Name: "tiny", ASes: 200, Hosts: 2000, Sessions: 3000, Seed: 1}
	// Small is for CI benches and examples.
	Small = Profile{Name: "small", ASes: 2000, Hosts: 12000, Sessions: 10000, Seed: 1}
	// Paper is the full 2005-scale reproduction.
	Paper = Profile{Name: "paper", ASes: 20955, Hosts: 23366, Sessions: 100000, Seed: 1, PopulatedFrac: 0.16}
)

// ProfileByName resolves a profile name.
func ProfileByName(name string) (Profile, error) {
	switch name {
	case "tiny":
		return Tiny, nil
	case "small":
		return Small, nil
	case "paper":
		return Paper, nil
	default:
		return Profile{}, fmt.Errorf("eval: unknown profile %q (tiny|small|paper)", name)
	}
}

// World is a fully assembled simulation universe.
type World struct {
	Profile Profile
	Graph   *asgraph.Graph
	Alloc   *bgp.Allocation
	Pop     *cluster.Population
	Router  *asgraph.Router
	Model   *netmodel.Model
	Prober  *netmodel.Prober
	Engine  *overlay.Engine
	RNG     *sim.RNG
}

// BuildWorld assembles a world for the profile: topology, prefix
// allocation, population, ground-truth model with injected congestion,
// and a measurement prober.
func BuildWorld(p Profile) (*World, error) {
	rng := sim.NewRNG(p.Seed)
	g, err := asgraph.Generate(asgraph.DefaultGenConfig(p.ASes), rng)
	if err != nil {
		return nil, fmt.Errorf("eval: topology: %w", err)
	}
	alloc, err := bgp.Allocate(g, bgp.DefaultAllocConfig(), rng)
	if err != nil {
		return nil, fmt.Errorf("eval: allocation: %w", err)
	}
	popCfg := cluster.DefaultGenConfig(p.Hosts)
	if p.PopulatedFrac > 0 {
		popCfg.PopulatedFrac = p.PopulatedFrac
	}
	pop, err := cluster.Generate(alloc, popCfg, rng)
	if err != nil {
		return nil, fmt.Errorf("eval: population: %w", err)
	}
	// Size the route-table cache to the populated ASes: the evaluation's
	// cluster-pair sweeps touch (almost) exactly those destinations, and
	// FIFO eviction under a cyclic scan would rebuild tables forever.
	router := asgraph.NewRouter(g, len(pop.PopulatedASes())+512)
	model, err := netmodel.New(g, router, pop, netmodel.DefaultConfig(), rng)
	if err != nil {
		return nil, fmt.Errorf("eval: model: %w", err)
	}
	prober, err := netmodel.NewProber(model, netmodel.DefaultProberConfig(), rng, nil)
	if err != nil {
		return nil, fmt.Errorf("eval: prober: %w", err)
	}
	return &World{
		Profile: p,
		Graph:   g,
		Alloc:   alloc,
		Pop:     pop,
		Router:  router,
		Model:   model,
		Prober:  prober,
		Engine:  overlay.NewEngine(model),
		RNG:     rng,
	}, nil
}

// ScaledCopy returns a world sharing this one's topology, prefix
// allocation, congestion conditions and link circuitousness, but with a
// population ratio times larger — Figure 17's paired scalability setup
// (23,366 -> 103,625 online IPs over the same Internet).
func (w *World) ScaledCopy(ratio float64) (*World, error) {
	if ratio <= 0 {
		return nil, fmt.Errorf("eval: scale ratio must be > 0, got %g", ratio)
	}
	rng := sim.NewRNG(w.Profile.Seed*7919 + 17)
	popCfg := cluster.DefaultGenConfig(int(float64(w.Profile.Hosts) * ratio))
	if w.Profile.PopulatedFrac > 0 {
		popCfg.PopulatedFrac = w.Profile.PopulatedFrac
	}
	pop, err := cluster.Generate(w.Alloc, popCfg, rng)
	if err != nil {
		return nil, fmt.Errorf("eval: scaled population: %w", err)
	}
	model := w.Model.WithPopulation(pop)
	prober, err := netmodel.NewProber(model, netmodel.DefaultProberConfig(), rng, nil)
	if err != nil {
		return nil, err
	}
	profile := w.Profile
	profile.Name = w.Profile.Name + "-scaled"
	profile.Hosts = pop.NumHosts()
	return &World{
		Profile: profile,
		Graph:   w.Graph,
		Alloc:   w.Alloc,
		Pop:     pop,
		Router:  w.Router,
		Model:   model,
		Prober:  prober,
		Engine:  overlay.NewEngine(model),
		RNG:     rng,
	}, nil
}

// Session is one VoIP call between two end hosts.
type Session struct {
	A, B cluster.HostID
}

// RandomSessions draws n sessions with endpoints in distinct clusters
// (the paper pairs random delegate IPs, which are distinct clusters by
// construction).
func (w *World) RandomSessions(n int) []Session {
	out := make([]Session, 0, n)
	for len(out) < n {
		a := cluster.HostID(w.RNG.Intn(w.Pop.NumHosts()))
		b := cluster.HostID(w.RNG.Intn(w.Pop.NumHosts()))
		if a == b || w.Pop.Host(a).Cluster == w.Pop.Host(b).Cluster {
			continue
		}
		out = append(out, Session{A: a, B: b})
	}
	return out
}

// DirectRTT returns the ground-truth direct RTT of a session.
func (w *World) DirectRTT(s Session) (time.Duration, bool) {
	return w.Model.HostRTT(s.A, s.B)
}

// LatentSessions filters sessions whose direct RTT exceeds the threshold
// — the ~1% of calls that need relaying (Section 7.1: "about 1,000
// sessions having their direct IP routing RTTs above 300 ms").
func (w *World) LatentSessions(sessions []Session, threshold time.Duration) []Session {
	var out []Session
	for _, s := range sessions {
		if rtt, ok := w.DirectRTT(s); ok && rtt > threshold {
			out = append(out, s)
		}
	}
	return out
}

// CalibrateK applies the paper's rule for choosing the valley-free BFS
// bound: "more than 90% of the sessions with direct IP routing RTTs below
// 300 ms have no more than 4 AS hops. Therefore, we can set k to 4"
// (Section 6.2). The constant 4 is a property of the 2005 Internet's
// path-length distribution; this function measures the same quantile on
// the world at hand, so synthetic topologies with longer paths get a
// proportionally wider horizon. sampleCap bounds the measurement cost
// (0 = all sessions).
func (w *World) CalibrateK(sessions []Session, threshold time.Duration, frac float64, sampleCap int) int {
	if frac <= 0 || frac > 1 {
		frac = 0.9
	}
	var hops []float64
	for i, s := range sessions {
		if sampleCap > 0 && i >= sampleCap {
			break
		}
		rtt, ok := w.DirectRTT(s)
		if !ok || rtt >= threshold {
			continue
		}
		ha, hb := w.Pop.Host(s.A), w.Pop.Host(s.B)
		if h, ok := w.Model.ASPathHops(ha.AS, hb.AS); ok {
			hops = append(hops, float64(h))
		}
	}
	if len(hops) == 0 {
		return core.DefaultParams().K
	}
	k := int(stats.Quantile(hops, frac) + 0.999)
	if k < 1 {
		k = 1
	}
	return k
}

// NewASAP builds an ASAP system over the world with the given
// parameters. The system is seeded from the profile, so its close-set
// probe streams are deterministic per cluster and independent of the
// order (or concurrency) in which the evaluation builds them.
func (w *World) NewASAP(params core.Params) (*core.System, error) {
	return core.NewSystemSeeded(w.Model, w.Prober, params, w.Profile.Seed)
}

// NewBaselines builds the paper's three baselines with its probe budgets
// (DEDI 80, RAND 200, MIX 40+120), scaled down when the world has fewer
// clusters than probes.
func (w *World) NewBaselines(dediN, randN, mixDedi, mixRand int) (*baseline.Dedi, *baseline.Rand, *baseline.Mix, error) {
	if c := w.Pop.NumClusters(); dediN > c {
		dediN = c
	}
	if c := w.Pop.NumClusters(); mixDedi > c {
		mixDedi = c
	}
	d, err := baseline.NewDedi(w.Pop, w.Model, w.Prober, dediN)
	if err != nil {
		return nil, nil, nil, err
	}
	r, err := baseline.NewRand(w.Pop, w.Prober, w.RNG, randN)
	if err != nil {
		return nil, nil, nil, err
	}
	m, err := baseline.NewMix(w.Pop, w.Model, w.Prober, w.RNG, mixDedi, mixRand)
	if err != nil {
		return nil, nil, nil, err
	}
	return d, r, m, nil
}
