package eval

import (
	"runtime"
	"sync"

	"asap/internal/sim"
)

// harnessSched spawns the harness's worker goroutines. The workers run
// at wall time by design — they parallelize whole experiment arms, each
// of which owns a private virtual clock — but they still go through a
// sim.Scheduler so every goroutine in internal/ is accounted for by the
// concurrency model (DESIGN.md §9; enforced by the schedgo analyzer).
var harnessSched sim.Scheduler = sim.NewWall()

// normWorkers resolves a worker-count argument: anything below 1 means
// "use every available CPU".
func normWorkers(workers int) int {
	if workers < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// forEachIndexed runs fn(i) for i in [0,n) on a bounded pool of workers.
// Each index is processed exactly once; fn writes its result into an
// index-addressed slot, so the caller's assembly order — and therefore
// the output — is independent of worker count and completion order.
func forEachIndexed(workers, n int, fn func(i int)) {
	workers = normWorkers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64
	var mu sync.Mutex
	take := func() int {
		mu.Lock()
		i := int(next)
		next++
		mu.Unlock()
		return i
	}
	worker := func() {
		for {
			i := take()
			if i >= n {
				return
			}
			fn(i)
		}
	}
	pool := make([]func(), workers)
	for w := range pool {
		pool[w] = worker
	}
	harnessSched.Join(0, pool...)
}
