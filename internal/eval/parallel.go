package eval

import (
	"runtime"
	"sync"
)

// normWorkers resolves a worker-count argument: anything below 1 means
// "use every available CPU".
func normWorkers(workers int) int {
	if workers < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// forEachIndexed runs fn(i) for i in [0,n) on a bounded pool of workers.
// Each index is processed exactly once; fn writes its result into an
// index-addressed slot, so the caller's assembly order — and therefore
// the output — is independent of worker count and completion order.
func forEachIndexed(workers, n int, fn func(i int)) {
	workers = normWorkers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64
	var mu sync.Mutex
	take := func() int {
		mu.Lock()
		i := int(next)
		next++
		mu.Unlock()
		return i
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := take()
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
