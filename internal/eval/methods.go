package eval

import (
	"fmt"
	"math"
	"time"

	"asap/internal/baseline"
	"asap/internal/cluster"
	"asap/internal/core"
	"asap/internal/netmodel"
	"asap/internal/overlay"
	"asap/internal/sim"
)

// EvalLossRate is the fixed per-path loss rate of the MOS evaluation
// ("we assume that each path has an average packet loss rate of 0.5%",
// Section 7.2).
const EvalLossRate = 0.005

// Outcome is the scored result of one method on one session, carrying the
// four metrics of Section 7.1.
type Outcome struct {
	Method string
	// QualityPaths is the number of relay paths found that satisfy the
	// RTT requirement, in end-host units.
	QualityPaths int64
	// ShortestRTT is the ground-truth RTT of the best relay path found;
	// +Inf (as a huge duration) when the method found nothing usable.
	ShortestRTT time.Duration
	// HighestMOS is the E-Model MOS of the best path at the fixed loss.
	HighestMOS float64
	// Messages is the probe/signalling message cost of the selection.
	Messages int64
}

// noPath marks a session where a method found no relay path at all.
const noPath = time.Duration(1<<62 - 1)

// Method runs a relay selection on a session and scores it against
// ground truth. A non-nil rng gives the run a private randomness stream
// (typically sub-seeded per (method, session) pair) so sessions can be
// scored concurrently and still reproduce the serial output bit for
// bit; nil falls back to the method's shared streams.
type Method interface {
	Name() string
	Run(s Session, rng *sim.RNG) (Outcome, error)
}

// baselineMethod scores a baseline selector: every probed candidate is a
// found relay path; quality paths are those whose ground-truth RTT is
// under the threshold.
type baselineMethod struct {
	sel baseline.Selector
	eng *overlay.Engine
}

// NewBaselineMethod wraps a baseline selector as a Method.
func NewBaselineMethod(sel baseline.Selector, eng *overlay.Engine) Method {
	return &baselineMethod{sel: sel, eng: eng}
}

func (m *baselineMethod) Name() string { return m.sel.Name() }

func (m *baselineMethod) Run(s Session, rng *sim.RNG) (Outcome, error) {
	res, err := m.sel.Select(s.A, s.B, rng)
	if err != nil {
		return Outcome{}, fmt.Errorf("eval: %s: %w", m.sel.Name(), err)
	}
	out := Outcome{Method: m.sel.Name(), Messages: res.Messages, ShortestRTT: noPath}
	// Score the whole candidate set through one vectorized ground-truth
	// visit per endpoint instead of two cache visits per candidate.
	relays := make([]cluster.HostID, len(res.Candidates))
	for i, c := range res.Candidates {
		relays[i] = c.Relay
	}
	paths := make([]overlay.Path, len(relays))
	m.eng.OneHopBatch(s.A, relays, s.B, paths)
	for _, p := range paths {
		if p.Kind == 0 {
			continue
		}
		if p.Quality() {
			out.QualityPaths++
		}
		if p.RTT < out.ShortestRTT {
			out.ShortestRTT = p.RTT
		}
	}
	out.HighestMOS = mosOf(out.ShortestRTT)
	return out, nil
}

// asapMethod scores the ASAP protocol. Quality paths are counted in
// end-host units over the candidate clusters, exactly as the paper counts
// them ("for each ip in cluster of r add ip to OS"). The ground-truth
// shortest RTT is evaluated through the surrogates of the best candidate
// clusters.
type asapMethod struct {
	sys *core.System
	eng *overlay.Engine
	// verifyTop bounds how many top candidates are scored against ground
	// truth for the shortest-RTT metric.
	verifyTop int
}

// NewASAPMethod wraps an ASAP system as a Method.
func NewASAPMethod(sys *core.System, eng *overlay.Engine) Method {
	return &asapMethod{sys: sys, eng: eng, verifyTop: 20}
}

func (m *asapMethod) Name() string { return "ASAP" }

func (m *asapMethod) Run(s Session, rng *sim.RNG) (Outcome, error) {
	var prober *netmodel.Prober
	if rng != nil {
		prober = m.sys.Prober().WithRNG(rng)
	}
	sel, err := m.sys.SelectCloseRelayWith(s.A, s.B, prober)
	if err != nil {
		return Outcome{}, fmt.Errorf("eval: ASAP: %w", err)
	}
	out := Outcome{
		Method:       "ASAP",
		QualityPaths: sel.QualityPaths(),
		Messages:     sel.Messages,
		ShortestRTT:  noPath,
	}
	relays := make([]cluster.HostID, 0, m.verifyTop)
	for i, oc := range sel.OneHop {
		if i >= m.verifyTop {
			break
		}
		if r, ok := m.sys.Surrogate(oc.Cluster); ok {
			relays = append(relays, r)
		}
	}
	if len(relays) > 0 {
		paths := make([]overlay.Path, len(relays))
		m.eng.OneHopBatch(s.A, relays, s.B, paths)
		for _, p := range paths {
			if p.Kind != 0 && p.RTT < out.ShortestRTT {
				out.ShortestRTT = p.RTT
			}
		}
	}
	for i, tc := range sel.TwoHop {
		if i >= m.verifyTop {
			break
		}
		r1, ok1 := m.sys.Surrogate(tc.First)
		r2, ok2 := m.sys.Surrogate(tc.Second)
		if !ok1 || !ok2 {
			continue
		}
		if p, ok := m.eng.TwoHop(s.A, r1, r2, s.B); ok && p.RTT < out.ShortestRTT {
			out.ShortestRTT = p.RTT
		}
	}
	out.HighestMOS = mosOf(out.ShortestRTT)
	return out, nil
}

// optMethod is the offline-optimal OPT: full knowledge, no message cost
// accounting (the paper reports no overhead for OPT).
type optMethod struct {
	eng *overlay.Engine
	cfg overlay.OptConfig
}

// NewOPTMethod builds the OPT reference method.
func NewOPTMethod(eng *overlay.Engine) Method {
	return &optMethod{eng: eng, cfg: overlay.DefaultOptConfig()}
}

func (m *optMethod) Name() string { return "OPT" }

// Run ignores rng: OPT is a ground-truth sweep with no randomness.
func (m *optMethod) Run(s Session, _ *sim.RNG) (Outcome, error) {
	out := Outcome{Method: "OPT", ShortestRTT: noPath}
	if p, ok := m.eng.Optimal(s.A, s.B, m.cfg); ok {
		out.ShortestRTT = p.RTT
		if p.Quality() {
			out.QualityPaths = 1
		}
	}
	out.HighestMOS = mosOf(out.ShortestRTT)
	return out, nil
}

func mosOf(rtt time.Duration) float64 {
	if rtt == noPath {
		return 1
	}
	return netmodel.MOSFromRTT(rtt, EvalLossRate, netmodel.CodecG729A)
}

// ShortestRTTms converts an outcome's shortest RTT to milliseconds for
// plotting; sessions with no path become +Inf.
func (o Outcome) ShortestRTTms() float64 {
	if o.ShortestRTT == noPath {
		return math.Inf(1)
	}
	return float64(o.ShortestRTT) / float64(time.Millisecond)
}

// Interface compliance checks.
var (
	_ Method = (*baselineMethod)(nil)
	_ Method = (*asapMethod)(nil)
	_ Method = (*optMethod)(nil)
)
