package eval

import (
	"strings"
	"testing"
	"time"
)

// scaleTestConfig is the shared small deployment: big enough to exercise
// every path the harness promises (latent cross-transit calls rescued by
// multihomed relay clusters, same-transit direct calls, surrogate churn
// with lease expiry and re-election, member rejoin under a fresh
// address), small enough for tier-1.
func scaleTestConfig(shards int) ScaleConfig {
	return ScaleConfig{
		Nodes:          240,
		Shards:         shards,
		Clusters:       8,
		Transits:       4,
		RelayClusters:  2,
		Calls:          28,
		Leavers:        6,
		LeaseTTL:       time.Second,
		Seed:           7,
		RecordOutcomes: true,
	}
}

// TestScaleGoldenAcrossShards is the PR's differential guard: the same
// deployment must produce byte-identical protocol outcomes at 1, 4 and
// 16 shards (conservative-lookahead parallel mode is an execution
// strategy, not a semantics change), and twice at the same shard count
// (plain run-to-run determinism).
func TestScaleGoldenAcrossShards(t *testing.T) {
	digests := make(map[int]string)
	for _, shards := range []int{1, 4, 16} {
		rep, err := RunScale(scaleTestConfig(shards))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		digests[shards] = rep.GoldenDigest()
	}
	for _, shards := range []int{4, 16} {
		if digests[shards] != digests[1] {
			t.Errorf("shards=%d diverges from sequential run:\n--- shards=1 ---\n%s--- shards=%d ---\n%s",
				shards, digests[1], shards, digests[shards])
		}
	}
	again, err := RunScale(scaleTestConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if again.GoldenDigest() != digests[4] {
		t.Error("same config and seed produced different outcomes across runs")
	}
}

// TestScaleWorkloadShape checks the deployment exercises what it claims:
// latent calls exist and most get relay-rescued under LatT, direct calls
// stay direct, and churn shows up as degraded or failed outcomes without
// wiping out the workload.
func TestScaleWorkloadShape(t *testing.T) {
	rep, err := RunScale(scaleTestConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Calls < 20 {
		t.Fatalf("workload collapsed: only %d calls planned", rep.Calls)
	}
	if rep.Latent == 0 {
		t.Error("no latent calls: cross-transit pairing is broken")
	}
	if rep.Relayed == 0 {
		t.Error("no relayed calls: relay clusters never intersected a close set")
	}
	if rep.Relayed > 0 && (rep.MeanRelayEst <= 0 || rep.MeanRelayEst >= scaleLatT) {
		t.Errorf("mean relay estimate %v outside (0, LatT=%v)", rep.MeanRelayEst, scaleLatT)
	}
	if rep.Failed == rep.Calls {
		t.Error("every call failed")
	}
	if rep.Events == 0 {
		t.Error("no events executed")
	}
	for _, line := range rep.Outcomes {
		if strings.Contains(line, "caller not joined") {
			t.Errorf("planned caller never joined: %s", line)
		}
	}
}

// TestScaleBytesPerNode audits the compact-node-state budget at a
// population where per-node state dominates fixed overheads. The bound
// is deliberately generous — it exists to catch regressions that
// reintroduce per-node kilobytes (eager role maps, un-interned cluster
// keys), not to pin an exact size.
func TestScaleBytesPerNode(t *testing.T) {
	if testing.Short() {
		t.Skip("10^4-node deployment: skipped under -short")
	}
	cfg := ScaleConfig{
		Nodes:        10_000,
		Shards:       4,
		Calls:        40,
		Leavers:      20,
		Seed:         11,
		MeasureBytes: true,
	}
	rep, err := RunScale(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.BytesPerNode <= 0 {
		t.Fatal("bytes-per-node audit produced nothing")
	}
	const budget = 8192
	if rep.BytesPerNode > budget {
		t.Errorf("resident state %.0f bytes/node exceeds the %d-byte budget", rep.BytesPerNode, budget)
	}
	t.Logf("nodes=%d events=%d bytes/node=%.0f relayed=%d/%d latent",
		rep.Nodes, rep.Events, rep.BytesPerNode, rep.Relayed, rep.Latent)
}
