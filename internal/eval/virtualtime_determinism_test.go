package eval

import (
	"fmt"
	"testing"
)

// The churn and stabilization experiments run entirely on a virtual
// clock, so a seed fully determines every measurement: two runs with
// the same config must render byte-identical reports. These mirror the
// formatAll golden checks in determinism_test.go but exercise the live
// protocol stack (transport latency, chaos windows, leases, retries)
// rather than the analytic evaluation harness.

func TestChurnVirtualTimeDeterministic(t *testing.T) {
	run := func() string {
		res, err := RunChurn(DefaultChurnConfig())
		if err != nil {
			t.Fatal(err)
		}
		return res.Lease.String() + "\n" + res.NoLease.String() + "\n" +
			fmt.Sprintf("%+v", res)
	}
	golden := run()
	for i := 0; i < 2; i++ {
		if got := run(); got != golden {
			t.Fatalf("churn rerun %d diverged:\n--- golden ---\n%s\n--- rerun ---\n%s",
				i, golden, got)
		}
	}
}

func TestStabilizationVirtualTimeDeterministic(t *testing.T) {
	run := func() string {
		res, err := RunStabilization(DefaultStabilizationConfig(stabilizationPaths()))
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v", res)
	}
	golden := run()
	for i := 0; i < 2; i++ {
		if got := run(); got != golden {
			t.Fatalf("stabilization rerun %d diverged:\n--- golden ---\n%s\n--- rerun ---\n%s",
				i, golden, got)
		}
	}
}
