package eval

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// CSV export: every figure's raw series can be written as a CSV file so
// external plotting tools can redraw the paper's figures directly.

// writeCSV writes rows to dir/name.csv with a header.
func writeCSV(dir, name string, header []string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("eval: csv dir: %w", err)
	}
	path := filepath.Join(dir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("eval: csv create: %w", err)
	}
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		_ = f.Close()
		return fmt.Errorf("eval: csv header: %w", err)
	}
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			_ = f.Close()
			return fmt.Errorf("eval: csv row: %w", err)
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func f2s(x float64) string { return strconv.FormatFloat(x, 'g', 8, 64) }

// WriteCSV exports the routing study's series (Figures 2-3) to dir.
func (st *RoutingStudy) WriteCSV(dir string) error {
	rows := make([][]string, len(st.DirectMs))
	for i, x := range st.DirectMs {
		rows[i] = []string{strconv.Itoa(i), f2s(x)}
	}
	if err := writeCSV(dir, "fig2a_direct_rtt", []string{"session", "direct_ms"}, rows); err != nil {
		return err
	}
	rows = rows[:0]
	for i := range st.PairDirectMs {
		rows = append(rows, []string{strconv.Itoa(i), f2s(st.PairDirectMs[i]), f2s(st.PairOptMs[i])})
	}
	if err := writeCSV(dir, "fig2b_direct_vs_opt", []string{"session", "direct_ms", "opt1hop_ms"}, rows); err != nil {
		return err
	}
	rows = rows[:0]
	for i, r := range st.ReductionRates {
		rows = append(rows, []string{strconv.Itoa(i), f2s(r)})
	}
	if err := writeCSV(dir, "fig3a_reduction_rate", []string{"session", "reduction"}, rows); err != nil {
		return err
	}
	rows = rows[:0]
	for i := range st.LatentDirectMs {
		rows = append(rows, []string{strconv.Itoa(i), f2s(st.LatentDirectMs[i]), f2s(st.LatentOptMs[i])})
	}
	return writeCSV(dir, "fig3b_latent_rescue", []string{"session", "direct_ms", "opt1hop_ms"}, rows)
}

// WriteCSV exports the comparison's per-method series (Figures 11-16, 18)
// to dir.
func (c *Comparison) WriteCSV(dir string) error {
	header := []string{"session", "method", "quality_paths", "shortest_rtt_ms", "highest_mos", "messages"}
	var rows [][]string
	for _, m := range c.Order {
		for i, o := range c.Outcomes[m] {
			rows = append(rows, []string{
				strconv.Itoa(i), m,
				strconv.FormatInt(o.QualityPaths, 10),
				f2s(o.ShortestRTTms()),
				f2s(o.HighestMOS),
				strconv.FormatInt(o.Messages, 10),
			})
		}
	}
	return writeCSV(dir, "fig11_18_methods", header, rows)
}

// WriteCSV exports the scalability series (Figure 17) to dir.
func (sc *Scalability) WriteCSV(dir string) error {
	header := []string{"method", "arm", "session", "quality_paths"}
	var rows [][]string
	add := func(m, arm string, xs []float64) {
		for i, x := range xs {
			rows = append(rows, []string{m, arm, strconv.Itoa(i), f2s(x)})
		}
	}
	for _, m := range sc.Order {
		add(m, "base", sc.Base[m])
		add(m, "scaled_div", sc.Scaled[m])
	}
	return writeCSV(dir, "fig17_scalability", header, rows)
}
