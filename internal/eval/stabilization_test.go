package eval

import (
	"testing"
	"time"

	"asap/internal/transport"
)

// stabilizationPaths: the active relay r0 (the one that dies), one
// near-equivalent backup r1, and a tail of mediocre candidates the
// Skype-like random explorer keeps stumbling onto.
func stabilizationPaths() []PathGround {
	return []PathGround{
		{Relay: "r0", RTT: 110 * time.Millisecond, Loss: 0.005},
		{Relay: "r1", RTT: 140 * time.Millisecond, Loss: 0.005},
		{Relay: "r2", RTT: 320 * time.Millisecond, Loss: 0.03},
		{Relay: "r3", RTT: 380 * time.Millisecond, Loss: 0.04},
		{Relay: "r4", RTT: 420 * time.Millisecond, Loss: 0.05},
		{Relay: "r5", RTT: 350 * time.Millisecond, Loss: 0.06},
	}
}

func TestStabilizationASAPRecoversFastAndClean(t *testing.T) {
	cfg := DefaultStabilizationConfig(stabilizationPaths())
	res, err := RunStabilization(cfg)
	if err != nil {
		t.Fatal(err)
	}

	a := res.ASAP
	if a.DetectAfter < 0 {
		t.Fatal("ASAP arm never detected the relay failure")
	}
	if window := cfg.Session.DetectionWindow(); a.DetectAfter > window {
		t.Errorf("ASAP detected after %v, want <= detection window %v", a.DetectAfter, window)
	}
	if a.RecoverAfter < 0 {
		t.Fatal("ASAP arm never recovered MOS")
	}
	// Recovery must land within one probe interval past the detection
	// window (the failover itself restores the path; the next probe
	// confirms the MOS).
	if limit := cfg.Session.DetectionWindow() + cfg.Session.ProbeInterval; a.RecoverAfter > limit {
		t.Errorf("ASAP recovered after %v, want <= %v", a.RecoverAfter, limit)
	}
	if a.Switches != 1 {
		t.Errorf("ASAP made %d path changes, want exactly 1 (single failover, no bounce)", a.Switches)
	}
	if a.PreMOS-a.FinalMOS > cfg.Tolerance {
		t.Errorf("ASAP final MOS %.2f not within %.1f of pre-failure %.2f", a.FinalMOS, cfg.Tolerance, a.PreMOS)
	}
}

// TestStabilizationBaselineIsSlowerAndBouncy sweeps seeds so the claim
// is about the baseline's expected behaviour, not one lucky draw: on
// average the Skype-like client stabilizes slower and switches more
// than the session-managed call (the Table 4 story).
func TestStabilizationBaselineIsSlowerAndBouncy(t *testing.T) {
	cfg := DefaultStabilizationConfig(stabilizationPaths())
	cfg.FailAt = 21300 * time.Millisecond // unaligned with both probe cadences

	var asap ArmResult
	var recoverSum time.Duration
	var switchSum, recovered, bounced int
	const seeds = 10
	for seed := int64(1); seed <= seeds; seed++ {
		cfg.Seed = seed
		res, err := RunStabilization(cfg)
		if err != nil {
			t.Fatal(err)
		}
		asap = res.ASAP
		b := res.Baseline
		if b.RecoverAfter >= 0 {
			recovered++
			recoverSum += b.RecoverAfter
		} else {
			// Never recovering within the horizon is the paper's worst
			// case; count it at the horizon bound.
			recoverSum += cfg.Horizon - cfg.FailAt
		}
		switchSum += b.Switches
		if b.Switches >= 2 {
			bounced++
		}
		if b.DetectAfter >= 0 && b.DetectAfter < asap.DetectAfter {
			t.Errorf("seed %d: baseline detected faster (%v) than keepalive-driven ASAP (%v)",
				seed, b.DetectAfter, asap.DetectAfter)
		}
	}

	meanRecover := recoverSum / seeds
	if meanRecover <= asap.RecoverAfter {
		t.Errorf("baseline mean recovery %v <= ASAP %v: sessions should stabilize faster", meanRecover, asap.RecoverAfter)
	}
	meanSwitches := float64(switchSum) / seeds
	if meanSwitches <= float64(asap.Switches) {
		t.Errorf("baseline mean switches %.1f <= ASAP %d: expected relay bounce", meanSwitches, asap.Switches)
	}
	if bounced == 0 {
		t.Error("no seed showed relay bounce (>= 2 switches) in the baseline")
	}
	if recovered == 0 {
		t.Error("baseline never recovered under any seed; model too pessimistic to compare")
	}
}

func TestStabilizationConfigValidation(t *testing.T) {
	good := stabilizationPaths()
	cases := []StabilizationConfig{
		DefaultStabilizationConfig(nil),
		DefaultStabilizationConfig(good[:1]),
		func() StabilizationConfig { c := DefaultStabilizationConfig(good); c.FailAt = 0; return c }(),
		func() StabilizationConfig { c := DefaultStabilizationConfig(good); c.Horizon = c.FailAt; return c }(),
		func() StabilizationConfig { c := DefaultStabilizationConfig(good); c.Tolerance = 0; return c }(),
		func() StabilizationConfig {
			c := DefaultStabilizationConfig(good)
			c.BaselineProbeInterval = 0
			return c
		}(),
		func() StabilizationConfig {
			c := DefaultStabilizationConfig(good)
			c.Session.ProbeInterval = 0
			return c
		}(),
	}
	for i, c := range cases {
		if _, err := RunStabilization(c); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

var _ = transport.Addr("") // keep the import pinned to the ground-truth type's package
