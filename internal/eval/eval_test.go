package eval

import (
	"strings"
	"testing"
	"time"

	"asap/internal/core"
	"asap/internal/netmodel"
)

func buildTiny(t testing.TB) *World {
	t.Helper()
	w, err := BuildWorld(Tiny)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"tiny", "small", "paper"} {
		p, err := ProfileByName(name)
		if err != nil || p.Name != name {
			t.Errorf("ProfileByName(%q) = %+v, %v", name, p, err)
		}
	}
	if _, err := ProfileByName("bogus"); err == nil {
		t.Error("unknown profile should fail")
	}
}

func TestBuildWorldDeterministic(t *testing.T) {
	w1 := buildTiny(t)
	w2 := buildTiny(t)
	if w1.Pop.NumHosts() != w2.Pop.NumHosts() || w1.Pop.NumClusters() != w2.Pop.NumClusters() {
		t.Fatal("same profile produced different worlds")
	}
	s1 := w1.RandomSessions(50)
	s2 := w2.RandomSessions(50)
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("same profile produced different sessions")
		}
	}
}

func TestRandomSessionsDistinctClusters(t *testing.T) {
	w := buildTiny(t)
	for _, s := range w.RandomSessions(200) {
		if w.Pop.Host(s.A).Cluster == w.Pop.Host(s.B).Cluster {
			t.Fatal("session endpoints share a cluster")
		}
	}
}

func TestLatentSessionFractionCalibration(t *testing.T) {
	// Section 7.1: ~1,000 of 100,000 sessions (0.3%..5% acceptable band
	// here) must exceed 300 ms so the headline experiments have a
	// population to work on.
	w := buildTiny(t)
	sessions := w.RandomSessions(Tiny.Sessions)
	latent := w.LatentSessions(sessions, netmodel.QualityRTT)
	frac := float64(len(latent)) / float64(len(sessions))
	if frac < 0.001 || frac > 0.2 {
		t.Errorf("latent fraction = %.4f, want in [0.001, 0.2] (paper ~0.01)", frac)
	}
}

func TestRoutingStudyShapes(t *testing.T) {
	w := buildTiny(t)
	sessions := w.RandomSessions(300)
	st := RunRoutingStudy(w, sessions, 60, netmodel.QualityRTT, 0, 0)
	if len(st.DirectMs) < 250 {
		t.Fatalf("only %d direct measurements", len(st.DirectMs))
	}
	if len(st.PairDirectMs) != len(st.PairOptMs) {
		t.Fatal("pair series lengths differ")
	}
	if len(st.PairDirectMs) == 0 {
		t.Fatal("no pair measurements")
	}
	for _, r := range st.ReductionRates {
		if r <= 0 || r >= 1 {
			t.Fatalf("reduction rate %v out of (0,1)", r)
		}
	}
	for i := range st.LatentOptMs {
		if st.LatentDirectMs[i] <= 300 {
			t.Fatal("non-latent session in latent series")
		}
	}
	// Formatting must not panic and must mention the figure names.
	for _, s := range []string{
		st.FormatFig2a(), st.FormatFig2b(), st.FormatFig3a(),
		st.FormatFig3b(netmodel.QualityRTT),
	} {
		if !strings.Contains(s, "Figure") {
			t.Errorf("missing caption in %q", s)
		}
	}
}

func TestComparisonEndToEnd(t *testing.T) {
	w := buildTiny(t)
	sessions := w.RandomSessions(Tiny.Sessions)
	latent := w.LatentSessions(sessions, netmodel.QualityRTT)
	if len(latent) < 3 {
		t.Skip("too few latent sessions in tiny world")
	}
	if len(latent) > 25 {
		latent = latent[:25]
	}

	sys, err := w.NewASAP(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	d, r, m, err := w.NewBaselines(20, 50, 10, 30)
	if err != nil {
		t.Fatal(err)
	}
	methods := []Method{
		NewBaselineMethod(d, w.Engine),
		NewBaselineMethod(r, w.Engine),
		NewBaselineMethod(m, w.Engine),
		NewASAPMethod(sys, w.Engine),
		NewOPTMethod(w.Engine),
	}
	c := RunComparison(methods, latent, Tiny.Seed, 0)
	if len(c.Order) != 5 {
		t.Fatalf("ran %d methods", len(c.Order))
	}
	for _, name := range []string{"DEDI", "RAND", "MIX", "ASAP", "OPT"} {
		if len(c.Outcomes[name]) == 0 {
			t.Fatalf("method %s produced no outcomes", name)
		}
	}

	// Core claims, at reduced scale:
	// ASAP finds far more quality paths than fixed-probe baselines...
	asapQP := meanOf(c.QualityPathSeries("ASAP"))
	for _, base := range []string{"DEDI", "RAND", "MIX"} {
		bq := meanOf(c.QualityPathSeries(base))
		if asapQP <= bq {
			t.Errorf("ASAP mean quality paths %.1f <= %s %.1f", asapQP, base, bq)
		}
	}
	// ...and OPT's shortest RTT lower-bounds everyone on common sessions.
	optRTT := c.ShortestRTTSeries("OPT")
	if len(optRTT) == 0 {
		t.Fatal("OPT found nothing")
	}

	// Formatting.
	for _, s := range []string{
		c.FormatFig11and12(), c.FormatFig13and14(), c.FormatFig15and16(), c.FormatFig18(),
	} {
		if !strings.Contains(s, "Figure") {
			t.Errorf("missing caption in %q", s)
		}
	}
}

func TestASAPOverheadBounded(t *testing.T) {
	w := buildTiny(t)
	sys, err := w.NewASAP(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sessions := w.RandomSessions(30)
	am := NewASAPMethod(sys, w.Engine)
	for _, s := range sessions {
		o, err := am.Run(s, nil)
		if err != nil {
			continue
		}
		if o.Messages < 4 {
			t.Errorf("ASAP session below minimum messages: %d", o.Messages)
		}
	}
}

func TestScalabilityRun(t *testing.T) {
	w := buildTiny(t)
	big, err := BuildWorld(Profile{Name: "tiny2x", ASes: Tiny.ASes, Hosts: Tiny.Hosts * 2, Sessions: Tiny.Sessions, Seed: Tiny.Seed})
	if err != nil {
		t.Fatal(err)
	}
	run := func(world *World, n int) *Comparison {
		sys, err := world.NewASAP(core.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		d, r, m, err := world.NewBaselines(10, 20, 5, 15)
		if err != nil {
			t.Fatal(err)
		}
		sessions := world.LatentSessions(world.RandomSessions(world.Profile.Sessions), netmodel.QualityRTT)
		if len(sessions) > n {
			sessions = sessions[:n]
		}
		return RunComparison([]Method{
			NewBaselineMethod(d, world.Engine),
			NewBaselineMethod(r, world.Engine),
			NewBaselineMethod(m, world.Engine),
			NewASAPMethod(sys, world.Engine),
		}, sessions, world.Profile.Seed, 0)
	}
	base := run(w, 10)
	scaled := run(big, 10)
	if len(base.Sessions) == 0 || len(scaled.Sessions) == 0 {
		t.Skip("no latent sessions at tiny scale")
	}
	sc := RunScalability(base, scaled, 2.0)
	if len(sc.Order) != 4 {
		t.Fatalf("scalability covers %d methods", len(sc.Order))
	}
	if !strings.Contains(sc.Format(), "Figure 17") {
		t.Error("missing Figure 17 caption")
	}
}

func TestCalibrateK(t *testing.T) {
	w := buildTiny(t)
	sessions := w.RandomSessions(500)
	k := w.CalibrateK(sessions, netmodel.QualityRTT, 0.9, 0)
	if k < 1 || k > 10 {
		t.Fatalf("calibrated K = %d, want a plausible small bound", k)
	}
	// The quantile rule: at least 90% of sub-threshold sessions must be
	// within K policy hops.
	within, total := 0, 0
	for _, s := range sessions {
		rtt, ok := w.DirectRTT(s)
		if !ok || rtt >= netmodel.QualityRTT {
			continue
		}
		h, ok := w.Model.ASPathHops(w.Pop.Host(s.A).AS, w.Pop.Host(s.B).AS)
		if !ok {
			continue
		}
		total++
		if h <= k {
			within++
		}
	}
	if total == 0 {
		t.Skip("no fast sessions")
	}
	if frac := float64(within) / float64(total); frac < 0.89 {
		t.Errorf("only %.2f of fast sessions within K=%d hops", frac, k)
	}
	// A stricter quantile can only raise K.
	if k99 := w.CalibrateK(sessions, netmodel.QualityRTT, 0.99, 0); k99 < k {
		t.Errorf("K(0.99)=%d < K(0.9)=%d", k99, k)
	}
}

func TestScaledCopySharesNetwork(t *testing.T) {
	w := buildTiny(t)
	sc, err := w.ScaledCopy(2)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Graph != w.Graph || sc.Alloc != w.Alloc || sc.Router != w.Router {
		t.Error("scaled copy must share topology, allocation and router")
	}
	if sc.Pop == w.Pop {
		t.Error("scaled copy must have its own population")
	}
	if got, want := sc.Pop.NumHosts(), 2*w.Profile.Hosts; got < want*9/10 || got > want*11/10 {
		t.Errorf("scaled hosts = %d, want ~%d", got, want)
	}
	// Conditions shared: congested AS sets identical.
	a := w.Model.CongestedASes()
	b := sc.Model.CongestedASes()
	if len(a) != len(b) {
		t.Errorf("condition sets differ: %d vs %d", len(a), len(b))
	}
	if _, err := w.ScaledCopy(0); err == nil {
		t.Error("ratio 0 should fail")
	}
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

func TestOutcomeShortestRTTms(t *testing.T) {
	o := Outcome{ShortestRTT: 250 * time.Millisecond}
	if o.ShortestRTTms() != 250 {
		t.Errorf("ShortestRTTms = %v", o.ShortestRTTms())
	}
	inf := Outcome{ShortestRTT: noPath}
	if v := inf.ShortestRTTms(); v == v && !(v > 1e18) { // IsInf without math import
		t.Errorf("noPath should map to +Inf, got %v", v)
	}
}
