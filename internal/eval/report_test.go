package eval

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"testing"

	"asap/internal/core"
	"asap/internal/netmodel"
)

func readCSV(t *testing.T, path string) [][]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = f.Close() }()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestRoutingStudyWriteCSV(t *testing.T) {
	w := buildTiny(t)
	st := RunRoutingStudy(w, w.RandomSessions(150), 40, netmodel.QualityRTT, 0, 0)
	dir := t.TempDir()
	if err := st.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"fig2a_direct_rtt", "fig2b_direct_vs_opt", "fig3a_reduction_rate", "fig3b_latent_rescue",
	} {
		rows := readCSV(t, filepath.Join(dir, name+".csv"))
		if len(rows) < 1 {
			t.Fatalf("%s: empty", name)
		}
	}
	rows := readCSV(t, filepath.Join(dir, "fig2a_direct_rtt.csv"))
	if got, want := len(rows)-1, len(st.DirectMs); got != want {
		t.Errorf("fig2a rows = %d, want %d", got, want)
	}
}

func TestComparisonWriteCSV(t *testing.T) {
	w := buildTiny(t)
	latent := w.LatentSessions(w.RandomSessions(Tiny.Sessions), netmodel.QualityRTT)
	if len(latent) == 0 {
		t.Skip("no latent sessions")
	}
	if len(latent) > 5 {
		latent = latent[:5]
	}
	sys, err := w.NewASAP(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	c := RunComparison([]Method{NewASAPMethod(sys, w.Engine)}, latent, Tiny.Seed, 0)
	dir := t.TempDir()
	if err := c.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	rows := readCSV(t, filepath.Join(dir, "fig11_18_methods.csv"))
	if len(rows) != len(latent)+1 {
		t.Errorf("rows = %d, want %d", len(rows), len(latent)+1)
	}
	if rows[0][1] != "method" {
		t.Errorf("header = %v", rows[0])
	}
}

func TestScalabilityWriteCSV(t *testing.T) {
	sc := &Scalability{
		Ratio:  2,
		Order:  []string{"ASAP"},
		Base:   map[string][]float64{"ASAP": {1, 2, 3}},
		Scaled: map[string][]float64{"ASAP": {1.5, 2.5}},
	}
	dir := t.TempDir()
	if err := sc.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	rows := readCSV(t, filepath.Join(dir, "fig17_scalability.csv"))
	if len(rows) != 6 {
		t.Errorf("rows = %d, want 6 (header + 3 base + 2 scaled)", len(rows))
	}
}

func TestWriteCSVBadDir(t *testing.T) {
	st := &RoutingStudy{DirectMs: []float64{1}}
	if err := st.WriteCSV("/proc/definitely/not/writable"); err == nil {
		t.Error("writing into unwritable dir should fail")
	}
}
