package eval

import (
	"fmt"
	"time"

	"asap/internal/asgraph"
	"asap/internal/core"
	"asap/internal/sim"
	"asap/internal/transport"
)

// The churn experiment measures the control-plane robustness layer end to
// end on the live actors (not the simulation): a three-cluster deployment
// places a stream of calls while the bootstrap suffers an outage window
// and the callee cluster's surrogate is killed mid-workload. Two arms run
// the identical seeded fault schedule:
//
//   - "lease": surrogate registrations expire unless renewed by
//     heartbeat, so after the kill the bootstrap stops handing out the
//     dead surrogate, the surviving member re-elects itself, and relayed
//     call setup recovers.
//   - "no-lease": registrations never expire (the pre-lease protocol).
//     The dead surrogate is handed out forever; calls keep completing
//     only because setup degrades to direct.
//
// Reported per arm: call-success rate, how many calls used a relay after
// the kill, whether the cluster re-elected, and the re-election latency.

// ChurnConfig parameterizes one churn run.
type ChurnConfig struct {
	// Calls is the number of calls placed (sequentially) by the workload.
	Calls int
	// CallGap is the pause between consecutive calls.
	CallGap time.Duration
	// OutageAfter is the call index before which the bootstrap enters its
	// outage window.
	OutageAfter int
	// BootstrapOutage is how long the bootstrap stays unreachable.
	BootstrapOutage time.Duration
	// KillAfter is the call index before which the callee cluster's
	// surrogate is killed.
	KillAfter int
	// LeaseTTL is the lease arm's surrogate-lease lifetime (the no-lease
	// arm always runs with 0).
	LeaseTTL time.Duration
	// Drop is the background per-call drop probability both arms endure.
	Drop float64
	// Seed seeds the chaos transport.
	Seed int64
}

// DefaultChurnConfig returns the standard churn workload.
func DefaultChurnConfig() ChurnConfig {
	return ChurnConfig{
		Calls:           20,
		CallGap:         5 * time.Millisecond,
		OutageAfter:     3,
		BootstrapOutage: 150 * time.Millisecond,
		KillAfter:       7,
		LeaseTTL:        120 * time.Millisecond,
		Drop:            0.02,
		Seed:            1,
	}
}

func (c ChurnConfig) validate() error {
	if c.Calls < 1 {
		return fmt.Errorf("eval: churn needs at least one call")
	}
	if c.KillAfter < 0 || c.KillAfter >= c.Calls {
		return fmt.Errorf("eval: need 0 <= KillAfter < Calls")
	}
	if c.LeaseTTL <= 0 {
		return fmt.Errorf("eval: the lease arm needs LeaseTTL > 0")
	}
	if c.Drop < 0 || c.Drop >= 1 {
		return fmt.Errorf("eval: Drop must be in [0,1)")
	}
	return nil
}

// ChurnArm is one policy's measured churn behaviour.
type ChurnArm struct {
	Method   string
	LeaseTTL time.Duration
	// Calls is the workload size; Completed counts calls that delivered
	// voice (relayed, direct, or degraded-direct).
	Calls     int
	Completed int
	// Relayed counts calls that delivered voice through a relay;
	// RelayedAfterKill counts those placed after the surrogate kill — the
	// recovery signal.
	Relayed          int
	RelayedAfterKill int
	// Degraded counts calls that fell back to direct because of a
	// control-plane failure.
	Degraded int
	// Reelected reports whether the callee cluster elected a replacement
	// surrogate within the workload; ReelectLatency is the time from the
	// kill to the first observation of the replacement.
	Reelected      bool
	ReelectLatency time.Duration
}

// SuccessRate is the fraction of calls that delivered voice.
func (a ChurnArm) SuccessRate() float64 {
	if a.Calls == 0 {
		return 0
	}
	return float64(a.Completed) / float64(a.Calls)
}

// String renders an arm as one report line.
func (a ChurnArm) String() string {
	reelect := "no re-election"
	if a.Reelected {
		reelect = fmt.Sprintf("re-elected in %s", a.ReelectLatency.Round(time.Millisecond))
	}
	return fmt.Sprintf("%-16s success %d/%d (%.0f%%), relayed %d (%d after kill), degraded %d, %s",
		a.Method, a.Completed, a.Calls, 100*a.SuccessRate(),
		a.Relayed, a.RelayedAfterKill, a.Degraded, reelect)
}

// ChurnResult pairs the two arms.
type ChurnResult struct {
	Lease   ChurnArm
	NoLease ChurnArm
}

// churnGraph is the experiment's AS topology: stub clusters AS100 and
// AS200 sit far apart; multi-homed AS300 is close to both, so its
// surrogate is the natural relay.
func churnGraph() *asgraph.Graph {
	b := asgraph.NewBuilder()
	b.AddNode(asgraph.Node{ASN: 1, Tier: asgraph.TierT1, X: 0, Y: 0})
	b.AddNode(asgraph.Node{ASN: 2, Tier: asgraph.TierT1, X: 1000, Y: 0})
	b.AddNode(asgraph.Node{ASN: 10, Tier: asgraph.TierTransit, X: 0, Y: 500})
	b.AddNode(asgraph.Node{ASN: 20, Tier: asgraph.TierTransit, X: 1000, Y: 500})
	b.AddNode(asgraph.Node{ASN: 100, Tier: asgraph.TierStub, X: 0, Y: 1000})
	b.AddNode(asgraph.Node{ASN: 200, Tier: asgraph.TierStub, X: 1000, Y: 1000})
	b.AddNode(asgraph.Node{ASN: 300, Tier: asgraph.TierStub, X: 500, Y: 800})
	b.AddEdge(1, 2, asgraph.RelP2P)
	b.AddEdge(10, 1, asgraph.RelC2P)
	b.AddEdge(20, 2, asgraph.RelC2P)
	b.AddEdge(100, 10, asgraph.RelC2P)
	b.AddEdge(200, 20, asgraph.RelC2P)
	b.AddEdge(300, 10, asgraph.RelC2P)
	b.AddEdge(300, 20, asgraph.RelC2P)
	return b.Build()
}

// RunChurn runs the lease and no-lease arms over the identical fault
// schedule and returns their measurements.
func RunChurn(cfg ChurnConfig) (ChurnResult, error) {
	if err := cfg.validate(); err != nil {
		return ChurnResult{}, err
	}
	lease, err := runChurnArm(cfg, cfg.LeaseTTL, fmt.Sprintf("lease(%s)", cfg.LeaseTTL))
	if err != nil {
		return ChurnResult{}, err
	}
	nolease, err := runChurnArm(cfg, 0, "no-lease")
	if err != nil {
		return ChurnResult{}, err
	}
	return ChurnResult{Lease: lease, NoLease: nolease}, nil
}

// runChurnArm runs one arm entirely on a virtual clock: the whole
// deployment — transport latency, chaos windows, leases, retries,
// renewal heartbeats and the call workload — shares one *sim.Clock, so
// seconds of protocol time cost milliseconds of wall time and the arm's
// measurements are byte-identical for a given seed.
func runChurnArm(cfg ChurnConfig, ttl time.Duration, method string) (ChurnArm, error) {
	arm := ChurnArm{Method: method, LeaseTTL: ttl, Calls: cfg.Calls}

	clk := sim.NewClock()
	mem := transport.NewMem()
	mem.Sched = clk
	defer func() { _ = mem.Close() }()
	// One-way delays: the 100<->200 direct path is slow (RTT 56ms, above
	// LatT 55ms); both are 2ms from the relay cluster (relay estimate
	// 4+4+40 = 48ms, under LatT and under direct).
	mem.Latency = func(from, to transport.Addr) time.Duration {
		cl := func(a transport.Addr) byte {
			if len(a) != 2 {
				return 'z' // bootstrap
			}
			return a[0]
		}
		cf, ct := cl(from), cl(to)
		if cf > ct {
			cf, ct = ct, cf
		}
		switch {
		case cf == 'a' && ct == 'b':
			return 28 * time.Millisecond
		case (cf == 'a' || cf == 'b') && ct == 'c':
			return 2 * time.Millisecond
		default:
			return time.Millisecond
		}
	}
	chaos := transport.NewChaos(mem, cfg.Seed)
	chaos.Sched = clk
	chaos.DropDefault(cfg.Drop)

	// The deployment and workload run as the clock's root task: node
	// construction, retries, lease renewal and the call stream all block
	// on virtual time only. RunTask returns when the workload ends,
	// abandoning whatever background ticks are still scheduled.
	var runErr error
	clk.RunTask(func() {
		bs, err := core.NewBootstrap(chaos, "bs", core.BootstrapConfig{
			Graph: churnGraph(),
			K:     4,
			Prefixes: []core.PrefixOrigin{
				{Prefix: "10.100.0.0/16", ASN: 100},
				{Prefix: "10.200.0.0/16", ASN: 200},
				{Prefix: "10.30.0.0/16", ASN: 300},
			},
			LeaseTTL: ttl,
			Sched:    clk,
		})
		if err != nil {
			runErr = err
			return
		}

		params := core.DefaultParams()
		params.LatT = 55 * time.Millisecond
		var nodes []*core.Node
		defer func() {
			for _, n := range nodes {
				n.Close()
			}
		}()
		mk := func(addr transport.Addr, ip string) (*core.Node, error) {
			n, err := core.NewNode(chaos, addr, core.NodeConfig{
				IP: ip, Bootstrap: bs.Addr(), Params: params,
				Retry: core.RetryPolicy{Attempts: 4, BaseDelay: 3 * time.Millisecond, MaxDelay: 25 * time.Millisecond, Multiplier: 2},
				Sched: clk, Seed: cfg.Seed,
			})
			if err != nil {
				return nil, fmt.Errorf("eval: churn node %s: %w", addr, err)
			}
			nodes = append(nodes, n)
			return n, nil
		}
		c0, err := mk("c0", "10.30.0.1") // relay cluster first so A/B see it
		if err != nil {
			runErr = err
			return
		}
		a0, err := mk("a0", "10.100.0.1")
		if err != nil {
			runErr = err
			return
		}
		a1, err := mk("a1", "10.100.0.2")
		if err != nil {
			runErr = err
			return
		}
		b0, err := mk("b0", "10.200.0.1")
		if err != nil {
			runErr = err
			return
		}
		b1, err := mk("b1", "10.200.0.2")
		if err != nil {
			runErr = err
			return
		}
		for _, n := range []*core.Node{c0, a0, b0} {
			if err := n.RefreshCloseSet(); err != nil {
				runErr = fmt.Errorf("eval: churn refresh %s: %w", n.Addr(), err)
				return
			}
		}

		const notKilled = time.Duration(-1)
		killedAt := notKilled
		payload := []byte("churn-voice-frames")
		for i := 0; i < cfg.Calls; i++ {
			if i == cfg.OutageAfter {
				chaos.OutageFor(bs.Addr(), cfg.BootstrapOutage)
			}
			if i == cfg.KillAfter {
				b0.Close()
				mem.Unbind(b0.Addr())
				killedAt = clk.Now()
			}
			choice, err := a1.SetupCall(b1.Addr())
			if err == nil {
				if err := a1.SendVoice(choice, b1.Addr(), payload, uint32(i)); err != nil {
					// Voice path faulted mid-call: drop the dead relay flow and
					// retry once on the direct path.
					a1.DropFlow(choice.Relay, b1.Addr())
					direct := &core.RelayChoice{Relay: ""}
					if err := a1.SendVoice(direct, b1.Addr(), payload, uint32(i)); err == nil {
						arm.Completed++
						arm.Degraded++
					}
				} else {
					arm.Completed++
					switch {
					case choice.Relay != "":
						arm.Relayed++
						if killedAt != notKilled {
							arm.RelayedAfterKill++
						}
					case choice.Degraded:
						arm.Degraded++
					}
				}
			}
			if killedAt != notKilled && !arm.Reelected && b1.IsSurrogate() {
				arm.Reelected = true
				arm.ReelectLatency = clk.Now() - killedAt
			}
			clk.Sleep(cfg.CallGap)
		}
		// A re-election that lands after the last call still counts, with the
		// latency measured at observation time.
		if killedAt != notKilled && !arm.Reelected && b1.IsSurrogate() {
			arm.Reelected = true
			arm.ReelectLatency = clk.Now() - killedAt
		}
	})
	return arm, runErr
}

// String renders the churn result as a two-line report.
func (r ChurnResult) String() string {
	return r.Lease.String() + "\n" + r.NoLease.String()
}
