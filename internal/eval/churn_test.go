package eval

import (
	"testing"
	"time"
)

func TestChurnConfigValidation(t *testing.T) {
	bad := []ChurnConfig{
		{},
		{Calls: 10, KillAfter: 10, LeaseTTL: time.Second},
		{Calls: 10, KillAfter: -1, LeaseTTL: time.Second},
		{Calls: 10, KillAfter: 3},
		{Calls: 10, KillAfter: 3, LeaseTTL: time.Second, Drop: 1},
	}
	for i, cfg := range bad {
		if _, err := RunChurn(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// TestChurnLeaseVsNoLease runs the full experiment: the lease arm must
// re-elect the callee cluster's surrogate after the kill and recover
// relayed call setup, while the no-lease arm stays stuck on the dead
// incumbent. Both arms must keep completing calls (degradation, not
// failure).
func TestChurnLeaseVsNoLease(t *testing.T) {
	res, err := RunChurn(DefaultChurnConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", res)

	if !res.Lease.Reelected {
		t.Error("lease arm never re-elected a surrogate")
	}
	if res.Lease.Reelected && res.Lease.ReelectLatency <= 0 {
		t.Error("lease arm re-elected with non-positive latency")
	}
	if res.Lease.RelayedAfterKill == 0 {
		t.Error("lease arm never recovered relayed call setup after the kill")
	}
	if res.NoLease.Reelected {
		t.Error("no-lease arm re-elected — expiry should be impossible with TTL 0")
	}
	if res.NoLease.RelayedAfterKill != 0 {
		t.Error("no-lease arm relayed after the kill despite the dead incumbent")
	}
	if got := res.Lease.SuccessRate(); got < 0.8 {
		t.Errorf("lease arm success rate %.2f, want >= 0.8", got)
	}
	if got := res.NoLease.SuccessRate(); got < 0.8 {
		t.Errorf("no-lease arm success rate %.2f (degradation must keep calls alive), want >= 0.8", got)
	}
}
