package eval

import (
	"fmt"
	"time"

	"asap/internal/netmodel"
	"asap/internal/session"
	"asap/internal/sim"
	"asap/internal/transport"
)

// The stabilization experiment measures the paper's Table 4 / Figure 7(a)
// story end to end: kill the active relay mid-call and time how long
// each policy takes to get the listener's MOS back to within a tolerance
// of its pre-failure value.
//
//   - "ASAP+sessions" runs the internal/session Manager: keepalive-based
//     failure detection (bounded retries with backoff) and failover to
//     the best monitored backup.
//   - "skype-like" models the Section 5 behaviour ASAP fixes: no
//     keepalives (death is noticed only when a slow quality probe
//     fails), then random candidate exploration with
//     switch-on-first-better and no hysteresis — the relay bounce that
//     produced stabilization times up to 329 s in the study.
//
// Both arms run on the same sim clock over the same ground-truth paths,
// so the comparison is exact and deterministic.

// PathGround is one candidate voice path's ground truth.
type PathGround struct {
	Relay transport.Addr
	RTT   time.Duration
	Loss  float64
}

// StabilizationConfig parameterizes one stabilization run.
type StabilizationConfig struct {
	// Paths holds the candidate paths; Paths[0] is the initial active
	// path (the relay that will die), the rest are backups in
	// setup-estimate order.
	Paths []PathGround
	// FailAt is the virtual time the active relay dies.
	FailAt time.Duration
	// Horizon bounds the run.
	Horizon time.Duration
	// Tolerance is the MOS recovery band (default 0.2).
	Tolerance float64
	// Session tunes the ASAP arm's monitor loop.
	Session session.Config
	// BaselineProbeInterval is the Skype-like arm's quality-check
	// cadence (default 5s; without keepalives this bounds its detection
	// delay).
	BaselineProbeInterval time.Duration
	// Seed drives the baseline's random exploration.
	Seed int64
}

// DefaultStabilizationConfig returns a runnable configuration over the
// given paths.
func DefaultStabilizationConfig(paths []PathGround) StabilizationConfig {
	return StabilizationConfig{
		Paths:                 paths,
		FailAt:                20 * time.Second,
		Horizon:               5 * time.Minute,
		Tolerance:             0.2,
		Session:               session.DefaultConfig(),
		BaselineProbeInterval: 5 * time.Second,
		Seed:                  1,
	}
}

// ArmResult is one policy's measured recovery behaviour.
type ArmResult struct {
	Method string
	// PreMOS is the active-path MOS just before the failure.
	PreMOS float64
	// DetectAfter is how long past FailAt the policy first treated the
	// active path as gone (-1 = never detected within the horizon).
	DetectAfter time.Duration
	// RecoverAfter is how long past FailAt the active-path MOS returned
	// to within Tolerance of PreMOS (-1 = never within the horizon).
	RecoverAfter time.Duration
	// Switches counts path changes after the failure (failovers
	// included) — the bounce metric.
	Switches int
	// FinalMOS is the active-path MOS at the horizon.
	FinalMOS float64
}

// StabilizationResult pairs the two arms.
type StabilizationResult struct {
	ASAP     ArmResult
	Baseline ArmResult
}

// groundDriver exposes the ground-truth paths as a session.Driver; the
// active relay (Paths[0]) is unreachable from FailAt on.
type groundDriver struct {
	clk    *sim.Clock
	byAddr map[transport.Addr]PathGround
	dead   transport.Addr
	failAt time.Duration
}

func (d *groundDriver) isDead(target transport.Addr) bool {
	return target == d.dead && d.clk.Now() >= d.failAt
}

func (d *groundDriver) ProbePath(relay, callee transport.Addr) (time.Duration, float64, error) {
	if d.isDead(relay) {
		return 0, 0, fmt.Errorf("eval: relay %s unreachable", relay)
	}
	p, ok := d.byAddr[relay]
	if !ok {
		return 0, 0, fmt.Errorf("eval: unknown path via %q", relay)
	}
	return p.RTT, p.Loss, nil
}

// ProbePaths implements session.BatchDriver, so the stabilization arm
// exercises the manager's batched probe flow — the same code path a
// live core.Node drives. Ground-truth lookups cost no virtual time, so
// answering sequentially measures exactly what per-path probes would.
func (d *groundDriver) ProbePaths(reqs []session.PathRequest) []session.PathResult {
	out := make([]session.PathResult, len(reqs))
	for i, r := range reqs {
		out[i].RTT, out[i].Loss, out[i].Err = d.ProbePath(r.Relay, r.Callee)
	}
	return out
}

func (d *groundDriver) Keepalive(target transport.Addr, flowID uint64) error {
	if d.isDead(target) {
		return fmt.Errorf("eval: relay %s unreachable", target)
	}
	return nil
}

func (c StabilizationConfig) validate() error {
	if len(c.Paths) < 2 {
		return fmt.Errorf("eval: stabilization needs an active path and at least one backup")
	}
	if c.FailAt <= 0 || c.Horizon <= c.FailAt {
		return fmt.Errorf("eval: need 0 < FailAt < Horizon")
	}
	if c.Tolerance <= 0 {
		return fmt.Errorf("eval: Tolerance must be > 0")
	}
	if c.BaselineProbeInterval <= 0 {
		return fmt.Errorf("eval: BaselineProbeInterval must be > 0")
	}
	return c.Session.Validate()
}

// RunStabilization runs both arms and returns their recovery timings.
func RunStabilization(cfg StabilizationConfig) (StabilizationResult, error) {
	if err := cfg.validate(); err != nil {
		return StabilizationResult{}, err
	}
	asap, err := runSessionArm(cfg)
	if err != nil {
		return StabilizationResult{}, err
	}
	return StabilizationResult{ASAP: asap, Baseline: runBaselineArm(cfg)}, nil
}

func mosOfGround(p PathGround, codec netmodel.Codec) float64 {
	return netmodel.MOSFromRTT(p.RTT, p.Loss, codec)
}

func runSessionArm(cfg StabilizationConfig) (ArmResult, error) {
	clk := &sim.Clock{}
	drv := &groundDriver{
		clk:    clk,
		byAddr: make(map[transport.Addr]PathGround, len(cfg.Paths)),
		dead:   cfg.Paths[0].Relay,
		failAt: cfg.FailAt,
	}
	for _, p := range cfg.Paths {
		drv.byAddr[p.Relay] = p
	}

	res := ArmResult{Method: "ASAP+sessions", DetectAfter: -1, RecoverAfter: -1}
	mgr, err := session.NewManager(cfg.Session, clk, drv, session.WithEventLog(func(e session.Event) {
		if e.Kind == "relay-failed" && res.DetectAfter < 0 {
			res.DetectAfter = e.At - cfg.FailAt
		}
		if (e.Kind == "failover" || e.Kind == "switch") && e.At > cfg.FailAt {
			res.Switches++
		}
	}))
	if err != nil {
		return res, err
	}
	active := session.Candidate{Relay: cfg.Paths[0].Relay, Est: cfg.Paths[0].RTT}
	var backups []session.Candidate
	for _, p := range cfg.Paths[1:] {
		backups = append(backups, session.Candidate{Relay: p.Relay, Est: p.RTT})
	}
	sess, err := mgr.Open("callee", active, backups, 1)
	if err != nil {
		return res, err
	}
	mgr.Start()

	res.PreMOS = mosOfGround(cfg.Paths[0], cfg.Session.Codec)
	// Step the clock event by event so recovery is timed at the probe
	// that achieved it, not at a coarse sampling boundary.
	for clk.Now() < cfg.Horizon {
		if !clk.Step() {
			break
		}
		if clk.Now() > cfg.FailAt && res.RecoverAfter < 0 {
			if mos := sess.LastMOS(); res.PreMOS-mos <= cfg.Tolerance && mos > 1 {
				// LastMOS reflects the current active path only after a
				// post-failover probe; a dead active path scores 1.
				if sess.State() == session.StateActive || sess.State() == session.StateDegraded {
					res.RecoverAfter = clk.Now() - cfg.FailAt
				}
			}
		}
	}
	res.FinalMOS = sess.LastMOS()
	mgr.Close()
	return res, nil
}

// runBaselineArm models the Skype-like client of Section 5: quality is
// checked every BaselineProbeInterval with no keepalives, probes are
// noisy King-style estimates, and the client switches on the first
// noisy comparison that favours a freshly probed random candidate — no
// margin, no consecutive-probe discipline. The noise plus the missing
// hysteresis is exactly what makes it bounce between mediocre relays
// during stabilization.
func runBaselineArm(cfg StabilizationConfig) ArmResult {
	rng := sim.NewRNG(cfg.Seed)
	codec := cfg.Session.Codec
	res := ArmResult{Method: "skype-like", DetectAfter: -1, RecoverAfter: -1}
	res.PreMOS = mosOfGround(cfg.Paths[0], codec)

	// probeNoise is the per-measurement MOS estimation error.
	const probeNoise = 0.15
	activeIdx := 0
	alive := func(i int, now time.Duration) bool {
		return !(i == 0 && now >= cfg.FailAt)
	}
	trueMOS := func(i int, now time.Duration) float64 {
		if !alive(i, now) {
			return 1
		}
		return mosOfGround(cfg.Paths[i], codec)
	}

	for now := cfg.BaselineProbeInterval; now <= cfg.Horizon; now += cfg.BaselineProbeInterval {
		cur := trueMOS(activeIdx, now)
		if activeIdx == 0 && !alive(0, now) && res.DetectAfter < 0 {
			res.DetectAfter = now - cfg.FailAt
		}
		// Re-probe one random candidate, Skype-style exploration.
		pick := rng.Intn(len(cfg.Paths))
		if pick != activeIdx && alive(pick, now) {
			pickEst := trueMOS(pick, now) + rng.Normal(0, probeNoise)
			curEst := cur
			if alive(activeIdx, now) {
				curEst += rng.Normal(0, probeNoise)
			}
			if pickEst > curEst {
				activeIdx = pick
				cur = trueMOS(activeIdx, now)
				if now > cfg.FailAt {
					res.Switches++
				}
			}
		}
		if now > cfg.FailAt && res.RecoverAfter < 0 && alive(activeIdx, now) &&
			res.PreMOS-cur <= cfg.Tolerance {
			res.RecoverAfter = now - cfg.FailAt
		}
		res.FinalMOS = cur
	}
	return res
}

// String renders an arm result as one report line.
func (a ArmResult) String() string {
	det, rec := "never", "never"
	if a.DetectAfter >= 0 {
		det = a.DetectAfter.Round(time.Millisecond).String()
	}
	if a.RecoverAfter >= 0 {
		rec = a.RecoverAfter.Round(time.Millisecond).String()
	}
	return fmt.Sprintf("%-14s pre-MOS %.2f, detect %s, recover %s, %d switches, final MOS %.2f",
		a.Method, a.PreMOS, det, rec, a.Switches, a.FinalMOS)
}
