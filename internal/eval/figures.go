package eval

import (
	"fmt"
	"math"
	"strings"
	"time"

	"asap/internal/sim"
	"asap/internal/stats"
)

// ms converts a duration to float milliseconds.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// --- Section 3: benefits of overlay routing (Figures 2 and 3) ---

// RoutingStudy holds the direct-vs-optimal-relay measurements behind
// Figures 2(a), 2(b), 3(a) and 3(b).
type RoutingStudy struct {
	// DirectMs has one direct-IP RTT per reachable session.
	DirectMs []float64
	// PairSessions is the subset of sessions with both direct and optimal
	// one-hop measurements (Figure 2(b)).
	PairDirectMs []float64
	PairOptMs    []float64
	// ReductionRates holds r = (direct - opt)/direct for sessions where
	// the optimal one-hop relay beats direct routing (Figure 3(a)).
	ReductionRates []float64
	// LatentDirectMs / LatentOptMs restrict to sessions with direct RTT
	// over the threshold (Figure 3(b)).
	LatentDirectMs []float64
	LatentOptMs    []float64
}

// RunRoutingStudy measures direct RTTs for all sessions (Fig. 2(a)) and
// optimal one-hop relays for up to pairSample sessions plus up to
// latentCap latent sessions (Figs. 2(b), 3(a), 3(b); latentCap <= 0
// means all). The full-population one-hop sweep is quadratic, hence the
// bounds for the scatter figures at paper scale.
//
// Both measurement sweeps are pure ground-truth lookups (no RNG), so
// they fan out over a pool of `workers` goroutines (< 1 = all CPUs)
// into index-addressed slots; the series are then assembled serially in
// session order, making the result identical for every worker count.
func RunRoutingStudy(w *World, sessions []Session, pairSample int, threshold time.Duration, latentCap, workers int) *RoutingStudy {
	st := &RoutingStudy{}
	type direct struct {
		rtt time.Duration
		ok  bool
	}
	directs := make([]direct, len(sessions))
	forEachIndexed(workers, len(sessions), func(i int) {
		d, ok := w.DirectRTT(sessions[i])
		directs[i] = direct{d, ok}
	})

	// Serial phase: latent selection and pair sampling depend on the
	// running latent count, so they walk the sessions in order.
	type pair struct {
		s      Session
		direct time.Duration
	}
	var pairs []pair
	latentTaken := 0
	for i, s := range sessions {
		d := directs[i]
		if !d.ok {
			continue
		}
		st.DirectMs = append(st.DirectMs, ms(d.rtt))
		latent := d.rtt > threshold && (latentCap <= 0 || latentTaken < latentCap)
		if latent {
			latentTaken++
		}
		if i < pairSample || latent {
			pairs = append(pairs, pair{s, d.rtt})
		}
	}

	type opt struct {
		rtt time.Duration
		ok  bool
	}
	opts := make([]opt, len(pairs))
	forEachIndexed(workers, len(pairs), func(i int) {
		o, ok := w.Engine.OptimalOneHop(pairs[i].s.A, pairs[i].s.B)
		if ok {
			opts[i] = opt{o.RTT, true}
		}
	})
	for i, p := range pairs {
		o := opts[i]
		if !o.ok {
			continue
		}
		st.PairDirectMs = append(st.PairDirectMs, ms(p.direct))
		st.PairOptMs = append(st.PairOptMs, ms(o.rtt))
		if o.rtt < p.direct {
			st.ReductionRates = append(st.ReductionRates,
				float64(p.direct-o.rtt)/float64(p.direct))
		}
		if p.direct > threshold {
			st.LatentDirectMs = append(st.LatentDirectMs, ms(p.direct))
			st.LatentOptMs = append(st.LatentOptMs, ms(o.rtt))
		}
	}
	return st
}

// FormatFig2a renders the direct-RTT distribution summary of Fig. 2(a).
func (st *RoutingStudy) FormatFig2a() string {
	var b strings.Builder
	n := len(st.DirectMs)
	fmt.Fprintf(&b, "Figure 2(a): direct IP routing RTT distribution (n=%d sessions)\n", n)
	for _, thr := range []float64{100, 200, 300, 500, 1000, 5000} {
		cnt := 0
		for _, x := range st.DirectMs {
			if x > thr {
				cnt++
			}
		}
		fmt.Fprintf(&b, "  sessions with RTT > %5.0f ms: %7d (%.3f%%)\n",
			thr, cnt, 100*float64(cnt)/float64(n))
	}
	fmt.Fprintf(&b, "  %s\n", stats.Summarize(st.DirectMs))
	return b.String()
}

// FormatFig2b renders the direct vs optimal one-hop comparison of
// Fig. 2(b).
func (st *RoutingStudy) FormatFig2b() string {
	var b strings.Builder
	n := len(st.PairDirectMs)
	fmt.Fprintf(&b, "Figure 2(b): direct vs optimal 1-hop RTT (n=%d sessions)\n", n)
	faster, under100 := 0, 0
	for i := range st.PairDirectMs {
		if st.PairOptMs[i] < st.PairDirectMs[i] {
			faster++
		}
		if st.PairOptMs[i] < 100 {
			under100++
		}
	}
	fmt.Fprintf(&b, "  sessions where optimal 1-hop beats direct: %d (%.1f%%; paper: ~60%%)\n",
		faster, 100*float64(faster)/float64(max(n, 1)))
	fmt.Fprintf(&b, "  optimal 1-hop RTTs below 100 ms: %d (%.1f%%; paper: most)\n",
		under100, 100*float64(under100)/float64(max(n, 1)))
	fmt.Fprintf(&b, "  direct: %s\n  opt1hop: %s\n",
		stats.Summarize(st.PairDirectMs), stats.Summarize(st.PairOptMs))
	return b.String()
}

// FormatFig3a renders the RTT reduction-rate distribution of Fig. 3(a).
func (st *RoutingStudy) FormatFig3a() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3(a): RTT reduction rate of optimal 1-hop relay (n=%d improving sessions)\n",
		len(st.ReductionRates))
	fmt.Fprintf(&b, "  %s\n", stats.Summarize(st.ReductionRates))
	h := stats.NewHistogram(st.ReductionRates, 10)
	for i, c := range h.Counts {
		fmt.Fprintf(&b, "  r in [%.2f,%.2f): %d\n", h.Edges[i], h.Edges[i]+h.Width, c)
	}
	return b.String()
}

// FormatFig3b renders the latent-session rescue figure of Fig. 3(b).
func (st *RoutingStudy) FormatFig3b(threshold time.Duration) string {
	var b strings.Builder
	n := len(st.LatentDirectMs)
	fmt.Fprintf(&b, "Figure 3(b): sessions with direct RTT > %v (n=%d)\n", threshold, n)
	rescued := 0
	for _, o := range st.LatentOptMs {
		if o < ms(threshold) {
			rescued++
		}
	}
	fmt.Fprintf(&b, "  rescued by optimal 1-hop (< %v): %d/%d (paper: all)\n", threshold, rescued, n)
	fmt.Fprintf(&b, "  latent direct: %s\n  latent opt1hop: %s\n",
		stats.Summarize(st.LatentDirectMs), stats.Summarize(st.LatentOptMs))
	return b.String()
}

// --- Section 7: method comparison (Figures 11-18) ---

// Comparison holds per-method outcomes over a session set.
type Comparison struct {
	Sessions []Session
	Order    []string
	Outcomes map[string][]Outcome
}

// RunComparison runs every method on every session. A method error on a
// session (e.g. an endpoint cluster lost its surrogate) skips that
// session for that method.
//
// Sessions are scored on a pool of `workers` goroutines (< 1 = all
// CPUs). Every (method, session-index) run gets its own RNG sub-seeded
// as SubSeed(seed, StringLabel(method), index), so no run observes any
// other run's draws and the outcome slices are bit-for-bit identical
// for every worker count — including workers == 1.
func RunComparison(methods []Method, sessions []Session, seed int64, workers int) *Comparison {
	c := &Comparison{
		Sessions: sessions,
		Outcomes: make(map[string][]Outcome, len(methods)),
	}
	for _, m := range methods {
		c.Order = append(c.Order, m.Name())
		label := sim.StringLabel(m.Name())
		type slot struct {
			o  Outcome
			ok bool
		}
		slots := make([]slot, len(sessions))
		forEachIndexed(workers, len(sessions), func(i int) {
			rng := sim.NewRNG(sim.SubSeed(seed, label, uint64(i)))
			o, err := m.Run(sessions[i], rng)
			if err != nil {
				return
			}
			slots[i] = slot{o, true}
		})
		outs := make([]Outcome, 0, len(sessions))
		for _, s := range slots {
			if s.ok {
				outs = append(outs, s.o)
			}
		}
		c.Outcomes[m.Name()] = outs
	}
	return c
}

// QualityPathSeries returns per-session quality path counts for a method.
func (c *Comparison) QualityPathSeries(method string) []float64 {
	outs := c.Outcomes[method]
	xs := make([]float64, len(outs))
	for i, o := range outs {
		xs[i] = float64(o.QualityPaths)
	}
	return xs
}

// ShortestRTTSeries returns per-session shortest ground-truth relay RTTs
// in ms (sessions with no path omitted).
func (c *Comparison) ShortestRTTSeries(method string) []float64 {
	var xs []float64
	for _, o := range c.Outcomes[method] {
		if v := o.ShortestRTTms(); !math.IsInf(v, 1) {
			xs = append(xs, v)
		}
	}
	return xs
}

// MOSSeries returns per-session highest MOS values.
func (c *Comparison) MOSSeries(method string) []float64 {
	outs := c.Outcomes[method]
	xs := make([]float64, len(outs))
	for i, o := range outs {
		xs[i] = o.HighestMOS
	}
	return xs
}

// MessageSeries returns per-session message counts.
func (c *Comparison) MessageSeries(method string) []float64 {
	outs := c.Outcomes[method]
	xs := make([]float64, len(outs))
	for i, o := range outs {
		xs[i] = float64(o.Messages)
	}
	return xs
}

// FormatFig11and12 renders the quality-path scatter (Fig. 11) and CDF
// (Fig. 12).
func (c *Comparison) FormatFig11and12() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figures 11/12: number of quality paths per latent session (n=%d)\n", len(c.Sessions))
	for _, m := range c.Order {
		if m == "OPT" {
			continue // the paper plots quality-path counts for the four online methods
		}
		xs := c.QualityPathSeries(m)
		fmt.Fprintf(&b, "  %-5s %s\n", m, stats.Summarize(xs))
		for _, probe := range []float64{0, 10, 100, 1000, 10000} {
			fmt.Fprintf(&b, "        P(paths > %6.0f) = %.3f\n", probe, stats.FractionAbove(xs, probe))
		}
	}
	return b.String()
}

// FormatFig13and14 renders shortest RTTs (Fig. 13) and their CCDF
// (Fig. 14).
func (c *Comparison) FormatFig13and14() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figures 13/14: shortest relay-path RTT per latent session (n=%d)\n", len(c.Sessions))
	for _, m := range c.Order {
		xs := c.ShortestRTTSeries(m)
		fmt.Fprintf(&b, "  %-5s %s\n", m, stats.Summarize(xs))
		for _, probe := range []float64{115, 300, 1000} {
			fmt.Fprintf(&b, "        P(RTT > %4.0f ms) = %.3f\n", probe, stats.FractionAbove(xs, probe))
		}
	}
	return b.String()
}

// FormatFig15and16 renders the MOS figures (Figs. 15 and 16).
func (c *Comparison) FormatFig15and16() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figures 15/16: highest MOS per latent session (G.729A+VAD, loss %.1f%%, n=%d)\n",
		EvalLossRate*100, len(c.Sessions))
	for _, m := range c.Order {
		xs := c.MOSSeries(m)
		fmt.Fprintf(&b, "  %-5s %s\n", m, stats.Summarize(xs))
		for _, probe := range []float64{2.9, 3.6, 3.85} {
			fmt.Fprintf(&b, "        P(MOS <= %.2f) = %.3f\n", probe, stats.FractionAtMost(xs, probe))
		}
	}
	return b.String()
}

// FormatFig18 renders the overhead CDF (Fig. 18).
func (c *Comparison) FormatFig18() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 18: per-session selection overhead in messages (n=%d)\n", len(c.Sessions))
	for _, m := range c.Order {
		if m == "OPT" {
			continue // offline method; no overhead reported
		}
		xs := c.MessageSeries(m)
		fmt.Fprintf(&b, "  %-5s %s\n", m, stats.Summarize(xs))
		fmt.Fprintf(&b, "        P(msgs <= 300) = %.3f\n", stats.FractionAtMost(xs, 300))
	}
	return b.String()
}

// --- Figure 17: scalability ---

// Scalability compares quality-path CDFs of a base and a scaled world,
// with the scaled counts divided by the population ratio (the paper's
// 103,625/23,366 = 4.434).
type Scalability struct {
	Ratio float64
	// PerMethod maps method -> (base series, scaled-and-divided series).
	Base   map[string][]float64
	Scaled map[string][]float64
	Order  []string
}

// RunScalability runs the quality-path experiment on both worlds.
func RunScalability(base, scaled *Comparison, ratio float64) *Scalability {
	sc := &Scalability{
		Ratio:  ratio,
		Base:   make(map[string][]float64),
		Scaled: make(map[string][]float64),
	}
	for _, m := range base.Order {
		if m == "OPT" {
			continue
		}
		sc.Order = append(sc.Order, m)
		sc.Base[m] = base.QualityPathSeries(m)
		raw := scaled.QualityPathSeries(m)
		div := make([]float64, len(raw))
		for i, x := range raw {
			div[i] = x / ratio
		}
		sc.Scaled[m] = div
	}
	return sc
}

// Format renders Figure 17's comparison: for a scalable method the
// divided scaled curve matches the base curve; for the fixed-probe
// baselines the per-capita counts collapse.
func (sc *Scalability) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 17: quality paths at %.3fx population, divided by %.3f\n", sc.Ratio, sc.Ratio)
	for _, m := range sc.Order {
		base, scaled := sc.Base[m], sc.Scaled[m]
		fmt.Fprintf(&b, "  %-5s base:   %s\n", m, stats.Summarize(base))
		fmt.Fprintf(&b, "        scaled: %s\n", stats.Summarize(scaled))
		bm, sm := stats.Mean(base), stats.Mean(scaled)
		if bm > 0 {
			fmt.Fprintf(&b, "        per-capita retention: %.2f (1.0 = perfectly scalable)\n", sm/bm)
		}
	}
	return b.String()
}
