package eval

import (
	"testing"

	"asap/internal/core"
	"asap/internal/netmodel"
)

// comparisonMethods assembles the full five-method lineup over a world.
func comparisonMethods(t *testing.T, w *World) []Method {
	t.Helper()
	sys, err := w.NewASAP(core.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	d, r, m, err := w.NewBaselines(15, 40, 8, 25)
	if err != nil {
		t.Fatal(err)
	}
	return []Method{
		NewBaselineMethod(d, w.Engine),
		NewBaselineMethod(r, w.Engine),
		NewBaselineMethod(m, w.Engine),
		NewASAPMethod(sys, w.Engine),
		NewOPTMethod(w.Engine),
	}
}

// formatAll renders every Section 7 figure of a comparison into one
// string for byte-level equality checks.
func formatAll(c *Comparison) string {
	return c.FormatFig11and12() + c.FormatFig13and14() + c.FormatFig15and16() + c.FormatFig18()
}

// TestComparisonParallelMatchesSerial is the golden determinism check:
// the parallel evaluation harness must produce byte-for-byte identical
// figures to the serial run, for any worker count. Each worker count
// runs on a freshly built world so no cache warmed by an earlier run
// can mask a dependence on execution order; worker counts above the
// session count force both "workers outnumber work" and "work
// outnumbers workers" completion orderings.
func TestComparisonParallelMatchesSerial(t *testing.T) {
	run := func(workers int) string {
		w := buildTiny(t)
		latent := w.LatentSessions(w.RandomSessions(Tiny.Sessions), netmodel.QualityRTT)
		if len(latent) < 4 {
			t.Skip("too few latent sessions in tiny world")
		}
		if len(latent) > 20 {
			latent = latent[:20]
		}
		c := RunComparison(comparisonMethods(t, w), latent, w.Profile.Seed, workers)
		return formatAll(c)
	}

	golden := run(1)
	for _, workers := range []int{2, 3, 8, 64} {
		if got := run(workers); got != golden {
			t.Fatalf("workers=%d output diverged from serial run:\n--- serial ---\n%s\n--- workers=%d ---\n%s",
				workers, golden, workers, got)
		}
	}
}

// TestRoutingStudyParallelMatchesSerial checks the RNG-free sweeps the
// same way: the two fan-out phases must assemble identical series for
// any worker count.
func TestRoutingStudyParallelMatchesSerial(t *testing.T) {
	w := buildTiny(t)
	sessions := w.RandomSessions(400)
	golden := RunRoutingStudy(w, sessions, 80, netmodel.QualityRTT, 0, 1)
	gold := golden.FormatFig2a() + golden.FormatFig2b() + golden.FormatFig3a() +
		golden.FormatFig3b(netmodel.QualityRTT)
	for _, workers := range []int{2, 8} {
		st := RunRoutingStudy(w, sessions, 80, netmodel.QualityRTT, 0, workers)
		got := st.FormatFig2a() + st.FormatFig2b() + st.FormatFig3a() +
			st.FormatFig3b(netmodel.QualityRTT)
		if got != gold {
			t.Fatalf("workers=%d routing study diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
				workers, gold, got)
		}
	}
}

// TestComparisonRepeatable pins the seed contract itself: two runs with
// the same seed agree, a different seed moves the noisy measurements.
func TestComparisonRepeatable(t *testing.T) {
	w := buildTiny(t)
	latent := w.LatentSessions(w.RandomSessions(Tiny.Sessions), netmodel.QualityRTT)
	if len(latent) < 4 {
		t.Skip("too few latent sessions in tiny world")
	}
	if len(latent) > 10 {
		latent = latent[:10]
	}
	methods := comparisonMethods(t, w)
	a := formatAll(RunComparison(methods, latent, 7, 4))
	b := formatAll(RunComparison(methods, latent, 7, 4))
	if a != b {
		t.Fatal("same seed produced different comparisons")
	}
	c := formatAll(RunComparison(methods, latent, 8, 4))
	if a == c {
		t.Fatal("different seeds produced identical noisy measurements")
	}
}
