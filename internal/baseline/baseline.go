// Package baseline implements the relay-selection methods ASAP is
// evaluated against in Section 7.1:
//
//   - DEDI ("RON-like"): a fixed set of dedicated relay nodes placed in
//     the clusters with the largest AS connection degrees; every session
//     probes all of them.
//   - RAND ("SOSR-like"): every session probes a fixed number of
//     uniformly random peer nodes.
//   - MIX: a combination — some dedicated nodes plus some random probes.
//
// Each method probes candidate one-hop relay paths and returns what it
// found; the evaluation scores the findings against ground truth.
package baseline

import (
	"fmt"
	"time"

	"asap/internal/cluster"
	"asap/internal/netmodel"
	"asap/internal/overlay"
	"asap/internal/sim"
)

// Candidate is one probed one-hop relay path.
type Candidate struct {
	Relay cluster.HostID
	// EstRTT is the measured (noisy) relay-path RTT.
	EstRTT time.Duration
}

// Result is the outcome of a baseline selection for one session.
type Result struct {
	Candidates []Candidate
	// Messages is the probe-message cost of the selection.
	Messages int64
}

// Selector is a relay-selection method under evaluation.
type Selector interface {
	// Name returns the method's label as used in the paper's figures.
	Name() string
	// Select probes relay candidates for the session h1 -> h2. A non-nil
	// rng makes the selection draw all its randomness (probe noise,
	// random candidate sampling) from that private stream, so sessions
	// can be evaluated concurrently and still reproduce the serial
	// output; nil falls back to the selector's shared streams.
	Select(h1, h2 cluster.HostID, rng *sim.RNG) (*Result, error)
}

// probeRelay measures a one-hop relay path h1 -> r -> h2 with two
// host-RTT probes, as a RON/SOSR node would.
func probeRelay(p *netmodel.Prober, h1, r, h2 cluster.HostID) (time.Duration, bool) {
	a, ok1 := p.HostRTT(h1, r)
	b, ok2 := p.HostRTT(r, h2)
	if !ok1 || !ok2 {
		return 0, false
	}
	return a + b + overlay.RelayRTT, true
}

// Dedi is the DEDI method: dedicated relay nodes in the highest-degree
// clusters ("DEDI probes 80 nodes in 80 clusters with the largest
// connection degrees").
type Dedi struct {
	name   string
	prober *netmodel.Prober
	nodes  []cluster.HostID
}

// NewDedi places n dedicated nodes. Dedicated nodes are the surrogate-
// grade hosts of the n populated clusters whose ASes have the largest
// degree.
func NewDedi(pop *cluster.Population, m *netmodel.Model, prober *netmodel.Prober, n int) (*Dedi, error) {
	if n < 1 {
		return nil, fmt.Errorf("baseline: DEDI needs n >= 1, got %d", n)
	}
	nodes := make([]cluster.HostID, 0, n)
	seen := make(map[cluster.ClusterID]bool)
	for _, asn := range m.Graph().TopDegreeASNs(m.Graph().NumNodes()) {
		for _, cid := range pop.ClustersInAS(asn) {
			if seen[cid] {
				continue
			}
			seen[cid] = true
			nodes = append(nodes, pop.Cluster(cid).Delegate)
			if len(nodes) == n {
				return &Dedi{name: "DEDI", prober: prober, nodes: nodes}, nil
			}
		}
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("baseline: no populated clusters for DEDI")
	}
	return &Dedi{name: "DEDI", prober: prober, nodes: nodes}, nil
}

// Name implements Selector.
func (d *Dedi) Name() string { return d.name }

// Nodes returns the dedicated relay set.
func (d *Dedi) Nodes() []cluster.HostID { return d.nodes }

// Select implements Selector: probe every dedicated node.
func (d *Dedi) Select(h1, h2 cluster.HostID, rng *sim.RNG) (*Result, error) {
	ctr := sim.NewCounters()
	p := d.prober
	if rng != nil {
		p = p.WithRNG(rng)
	}
	p = p.WithCounters(ctr)
	res := &Result{}
	for _, r := range d.nodes {
		if r == h1 || r == h2 {
			continue
		}
		if rtt, ok := probeRelay(p, h1, r, h2); ok {
			res.Candidates = append(res.Candidates, Candidate{Relay: r, EstRTT: rtt})
		}
	}
	res.Messages = ctr.Total()
	return res, nil
}

// Rand is the RAND method: probe n uniformly random peers ("RAND randomly
// selects 200 nodes").
type Rand struct {
	name   string
	pop    *cluster.Population
	prober *netmodel.Prober
	rng    *sim.RNG
	n      int
}

// NewRand builds a RAND selector probing n random peers per session.
func NewRand(pop *cluster.Population, prober *netmodel.Prober, rng *sim.RNG, n int) (*Rand, error) {
	if n < 1 {
		return nil, fmt.Errorf("baseline: RAND needs n >= 1, got %d", n)
	}
	return &Rand{name: "RAND", pop: pop, prober: prober, rng: rng, n: n}, nil
}

// Name implements Selector.
func (r *Rand) Name() string { return r.name }

// Select implements Selector: probe n random peers. With a non-nil rng
// both the candidate sample and the probe noise come from it.
func (r *Rand) Select(h1, h2 cluster.HostID, rng *sim.RNG) (*Result, error) {
	ctr := sim.NewCounters()
	p := r.prober
	sampler := r.rng
	if rng != nil {
		p = p.WithRNG(rng)
		sampler = rng
	}
	p = p.WithCounters(ctr)
	res := &Result{}
	for _, i := range sampler.Sample(r.pop.NumHosts(), r.n) {
		relay := cluster.HostID(i)
		if relay == h1 || relay == h2 {
			continue
		}
		if rtt, ok := probeRelay(p, h1, relay, h2); ok {
			res.Candidates = append(res.Candidates, Candidate{Relay: relay, EstRTT: rtt})
		}
	}
	res.Messages = ctr.Total()
	return res, nil
}

// Mix combines DEDI and RAND ("MIX probes 160 nodes, including 40
// dedicated nodes and 120 randomly probed nodes").
type Mix struct {
	dedi *Dedi
	rand *Rand
}

// NewMix builds a MIX selector from nDedi dedicated and nRand random
// probes.
func NewMix(pop *cluster.Population, m *netmodel.Model, prober *netmodel.Prober, rng *sim.RNG, nDedi, nRand int) (*Mix, error) {
	d, err := NewDedi(pop, m, prober, nDedi)
	if err != nil {
		return nil, err
	}
	r, err := NewRand(pop, prober, rng, nRand)
	if err != nil {
		return nil, err
	}
	return &Mix{dedi: d, rand: r}, nil
}

// Name implements Selector.
func (m *Mix) Name() string { return "MIX" }

// Select implements Selector. The dedicated and the random halves draw
// from the same rng in a fixed order, so one sub-seeded stream per
// session reproduces the whole MIX selection.
func (m *Mix) Select(h1, h2 cluster.HostID, rng *sim.RNG) (*Result, error) {
	rd, err := m.dedi.Select(h1, h2, rng)
	if err != nil {
		return nil, err
	}
	rr, err := m.rand.Select(h1, h2, rng)
	if err != nil {
		return nil, err
	}
	return &Result{
		Candidates: append(rd.Candidates, rr.Candidates...),
		Messages:   rd.Messages + rr.Messages,
	}, nil
}

// Interface compliance checks.
var (
	_ Selector = (*Dedi)(nil)
	_ Selector = (*Rand)(nil)
	_ Selector = (*Mix)(nil)
)
