package baseline

import (
	"testing"

	"asap/internal/asgraph"
	"asap/internal/bgp"
	"asap/internal/cluster"
	"asap/internal/netmodel"
	"asap/internal/sim"
)

type world struct {
	pop    *cluster.Population
	model  *netmodel.Model
	prober *netmodel.Prober
	rng    *sim.RNG
}

func buildWorld(t testing.TB, seed int64) *world {
	t.Helper()
	rng := sim.NewRNG(seed)
	g, err := asgraph.Generate(asgraph.DefaultGenConfig(250), rng)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := bgp.Allocate(g, bgp.DefaultAllocConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	pop, err := cluster.Generate(alloc, cluster.DefaultGenConfig(1500), rng)
	if err != nil {
		t.Fatal(err)
	}
	m, err := netmodel.New(g, asgraph.NewRouter(g, 0), pop, netmodel.DefaultConfig(), rng)
	if err != nil {
		t.Fatal(err)
	}
	p, err := netmodel.NewProber(m, netmodel.DefaultProberConfig(), rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &world{pop: pop, model: m, prober: p, rng: rng}
}

func (w *world) pair() (cluster.HostID, cluster.HostID) {
	for {
		a := cluster.HostID(w.rng.Intn(w.pop.NumHosts()))
		b := cluster.HostID(w.rng.Intn(w.pop.NumHosts()))
		if a != b {
			return a, b
		}
	}
}

func TestDediPlacement(t *testing.T) {
	w := buildWorld(t, 90)
	d, err := NewDedi(w.pop, w.model, w.prober, 20)
	if err != nil {
		t.Fatal(err)
	}
	nodes := d.Nodes()
	if len(nodes) != 20 {
		t.Fatalf("placed %d nodes, want 20", len(nodes))
	}
	// Distinct clusters, and each node is its cluster's delegate.
	seen := make(map[cluster.ClusterID]bool)
	var minDeg int = 1 << 30
	for _, n := range nodes {
		h := w.pop.Host(n)
		if seen[h.Cluster] {
			t.Fatal("two dedicated nodes in one cluster")
		}
		seen[h.Cluster] = true
		if w.pop.Cluster(h.Cluster).Delegate != n {
			t.Fatal("dedicated node is not the cluster delegate")
		}
		if deg := w.model.Graph().Degree(h.AS); deg < minDeg {
			minDeg = deg
		}
	}
	// The chosen clusters should be in high-degree ASes: their minimum
	// degree must be >= the population-wide median AS degree.
	degs := make([]int, 0)
	for _, asn := range w.pop.PopulatedASes() {
		degs = append(degs, w.model.Graph().Degree(asn))
	}
	median := degs[len(degs)/2]
	if minDeg < median {
		t.Errorf("dedicated min degree %d below median %d", minDeg, median)
	}
}

func TestDediSelect(t *testing.T) {
	w := buildWorld(t, 91)
	d, err := NewDedi(w.pop, w.model, w.prober, 15)
	if err != nil {
		t.Fatal(err)
	}
	h1, h2 := w.pair()
	res, err := d.Select(h1, h2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) == 0 {
		t.Fatal("no candidates")
	}
	if len(res.Candidates) > 15 {
		t.Fatalf("%d candidates from 15 nodes", len(res.Candidates))
	}
	// 2 probes x 2 messages per dedicated node attempted.
	if res.Messages != int64(15*4) {
		t.Errorf("messages = %d, want 60", res.Messages)
	}
	for _, c := range res.Candidates {
		if c.Relay == h1 || c.Relay == h2 {
			t.Error("endpoint probed as relay")
		}
		if c.EstRTT <= 0 {
			t.Error("non-positive candidate RTT")
		}
	}
}

func TestRandSelect(t *testing.T) {
	w := buildWorld(t, 92)
	r, err := NewRand(w.pop, w.prober, w.rng, 50)
	if err != nil {
		t.Fatal(err)
	}
	h1, h2 := w.pair()
	res, err := r.Select(h1, h2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) < 30 {
		t.Fatalf("only %d candidates from 50 probes", len(res.Candidates))
	}
	if res.Messages > 200 {
		t.Errorf("messages = %d, want <= 200", res.Messages)
	}
	// Distinct relays.
	seen := make(map[cluster.HostID]bool)
	for _, c := range res.Candidates {
		if seen[c.Relay] {
			t.Fatal("duplicate relay probed")
		}
		seen[c.Relay] = true
	}
}

func TestRandSpreadsAcrossSessions(t *testing.T) {
	w := buildWorld(t, 93)
	r, err := NewRand(w.pop, w.prober, w.rng, 30)
	if err != nil {
		t.Fatal(err)
	}
	h1, h2 := w.pair()
	r1, _ := r.Select(h1, h2, nil)
	r2, _ := r.Select(h1, h2, nil)
	same := 0
	set := make(map[cluster.HostID]bool)
	for _, c := range r1.Candidates {
		set[c.Relay] = true
	}
	for _, c := range r2.Candidates {
		if set[c.Relay] {
			same++
		}
	}
	if same == len(r2.Candidates) {
		t.Error("RAND probed identical node sets in consecutive sessions")
	}
}

func TestMixSelect(t *testing.T) {
	w := buildWorld(t, 94)
	m, err := NewMix(w.pop, w.model, w.prober, w.rng, 10, 30)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "MIX" {
		t.Errorf("name = %q", m.Name())
	}
	h1, h2 := w.pair()
	res, err := m.Select(h1, h2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) == 0 || len(res.Candidates) > 40 {
		t.Fatalf("%d candidates", len(res.Candidates))
	}
	if res.Messages > 160 {
		t.Errorf("messages = %d, want <= 160", res.Messages)
	}
}

func TestConstructorValidation(t *testing.T) {
	w := buildWorld(t, 95)
	if _, err := NewDedi(w.pop, w.model, w.prober, 0); err == nil {
		t.Error("NewDedi(0) should fail")
	}
	if _, err := NewRand(w.pop, w.prober, w.rng, 0); err == nil {
		t.Error("NewRand(0) should fail")
	}
	if _, err := NewMix(w.pop, w.model, w.prober, w.rng, 0, 10); err == nil {
		t.Error("NewMix with bad dedi count should fail")
	}
}
