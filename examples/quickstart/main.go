// Quickstart: build a small synthetic Internet, start an ASAP system,
// place one laggy call, and let select-close-relay rescue it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"asap"
	"asap/internal/overlay"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. A world: AS topology + BGP prefixes + peers + ground truth.
	world, err := asap.BuildWorld(asap.TinyProfile)
	if err != nil {
		return err
	}
	fmt.Printf("world: %d ASes, %d hosts in %d prefix clusters\n",
		world.Graph.NumNodes(), world.Pop.NumHosts(), world.Pop.NumClusters())

	// 2. An ASAP system: surrogates elected, close sets built on demand.
	sys, err := asap.NewSystem(world, asap.DefaultParams())
	if err != nil {
		return err
	}

	// 3. Find a session whose direct path violates the 300 ms budget.
	sessions := world.RandomSessions(world.Profile.Sessions)
	latent := world.LatentSessions(sessions, asap.QualityRTT)
	if len(latent) == 0 {
		return fmt.Errorf("no latent sessions in this tiny world; try another seed")
	}
	s := latent[0]
	direct, _ := world.DirectRTT(s)
	fmt.Printf("\ncall %d -> %d: direct RTT %v (over the %v budget)\n",
		s.A, s.B, direct.Round(time.Millisecond), asap.QualityRTT)
	fmt.Printf("  direct MOS: %.2f (satisfaction floor %.1f)\n",
		asap.MOSFromRTT(direct, 0.005, asap.CodecG729A), asap.SatisfactionMOS)

	// 4. select-close-relay: intersect the endpoints' close cluster sets.
	sel, err := sys.SelectCloseRelay(s.A, s.B)
	if err != nil {
		return err
	}
	fmt.Printf("\nASAP found %d one-hop relay clusters (%d candidate relay hosts), "+
		"%d two-hop pairs, using %d messages\n",
		len(sel.OneHop), sel.OneHopHosts, sel.TwoHopPairs, sel.Messages)

	// 5. Verify the best picks against ground truth.
	relays := sys.PickRelays(sel, 3)
	eng := overlay.NewEngine(world.Model)
	for i, path := range relays {
		var p overlay.Path
		var ok bool
		switch len(path) {
		case 1:
			p, ok = eng.OneHop(s.A, path[0], s.B)
		case 2:
			p, ok = eng.TwoHop(s.A, path[0], path[1], s.B)
		}
		if !ok {
			continue
		}
		fmt.Printf("  pick %d: %s via %v -> true RTT %v, MOS %.2f\n",
			i+1, p.Kind, path, p.RTT.Round(time.Millisecond), p.MOS(0.005))
	}
	return nil
}
