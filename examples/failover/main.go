// Failover: the live call-session subsystem on a deterministic virtual
// clock. Three demonstrations:
//
//  1. Relay death mid-call: keepalive misses with bounded backoff
//     retries declare the relay dead and the session fails over to the
//     best monitored backup — the full event timeline is printed.
//
//  2. Relay bounce: a backup whose measured quality flaps above and
//     below the active path's. The naive switch-on-first-better policy
//     bounces; hysteresis (margin + consecutive probes) holds still.
//
//  3. The stabilization experiment (the paper's Table 4 story): the
//     session-managed call vs a Skype-like client without keepalives or
//     hysteresis, same failure, same clock.
//
//     go run ./examples/failover
package main

import (
	"fmt"
	"os"
	"time"

	"asap/internal/eval"
	"asap/internal/session"
	"asap/internal/sim"
	"asap/internal/transport"
)

// path is a candidate voice path's ground truth for the scripted driver.
type path struct {
	rtt  time.Duration
	loss float64
}

// demoDriver serves scripted measurements to the session manager: the
// relay named by dead is unreachable from failAt, and flap (if set)
// overrides a path's loss as a function of virtual time.
type demoDriver struct {
	clk    *sim.Clock
	paths  map[transport.Addr]path
	dead   transport.Addr
	failAt time.Duration
	flap   func(relay transport.Addr, at time.Duration) (float64, bool)
}

func (d *demoDriver) down(target transport.Addr) bool {
	return target == d.dead && d.clk.Now() >= d.failAt
}

func (d *demoDriver) ProbePath(relay, callee transport.Addr) (time.Duration, float64, error) {
	if d.down(relay) {
		return 0, 0, fmt.Errorf("relay %s unreachable", relay)
	}
	p := d.paths[relay]
	loss := p.loss
	if d.flap != nil {
		if l, ok := d.flap(relay, d.clk.Now()); ok {
			loss = l
		}
	}
	return p.rtt, loss, nil
}

func (d *demoDriver) Keepalive(target transport.Addr, flowID uint64) error {
	if d.down(target) {
		return fmt.Errorf("relay %s unreachable", target)
	}
	return nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "failover:", err)
		os.Exit(1)
	}
}

func run() error {
	if err := failoverTimeline(); err != nil {
		return err
	}
	if err := hysteresisVsNaive(); err != nil {
		return err
	}
	return stabilization()
}

// failoverTimeline kills the active relay at t=10s and prints every
// session event until the call closes at t=30s.
func failoverTimeline() error {
	fmt.Println("=== 1. relay death and failover ===")
	clk := &sim.Clock{}
	drv := &demoDriver{
		clk: clk,
		paths: map[transport.Addr]path{
			"relay-a": {rtt: 120 * time.Millisecond, loss: 0.005},
			"relay-b": {rtt: 150 * time.Millisecond, loss: 0.010},
			"relay-c": {rtt: 240 * time.Millisecond, loss: 0.030},
		},
		dead:   "relay-a",
		failAt: 10 * time.Second,
	}
	cfg := session.DefaultConfig()
	mgr, err := session.NewManager(cfg, clk, drv,
		session.WithEventLog(func(e session.Event) { fmt.Println("  ", e) }))
	if err != nil {
		return err
	}
	sess, err := mgr.Open("callee",
		session.Candidate{Relay: "relay-a", Est: 120 * time.Millisecond},
		[]session.Candidate{
			{Relay: "relay-b", Est: 150 * time.Millisecond},
			{Relay: "relay-c", Est: 240 * time.Millisecond},
		}, 1)
	if err != nil {
		return err
	}
	mgr.Start()
	clk.RunUntil(30 * time.Second)
	state, via, failovers := sess.State(), sess.Active().Relay, sess.Failovers()
	mgr.Close()
	fmt.Printf("   detection window: %v (keepalive %v + backoff retries)\n",
		cfg.DetectionWindow(), cfg.KeepaliveInterval)
	fmt.Printf("   outcome: %s via %s, %d failovers\n\n", state, via, failovers)
	return nil
}

// hysteresisVsNaive runs the same flapping backup against the hysteresis
// policy and the naive one, and prints how often each switched.
func hysteresisVsNaive() error {
	fmt.Println("=== 2. relay bounce: hysteresis vs naive ===")
	run := func(margin float64, consecutive int) (int, error) {
		clk := &sim.Clock{}
		drv := &demoDriver{
			clk: clk,
			paths: map[transport.Addr]path{
				"steady": {rtt: 150 * time.Millisecond, loss: 0.02},
				"flappy": {rtt: 140 * time.Millisecond, loss: 0.02},
			},
			// The backup alternates each probe round between pristine
			// (briefly better than the active path) and badly lossy.
			flap: func(relay transport.Addr, at time.Duration) (float64, bool) {
				if relay != "flappy" {
					return 0, false
				}
				if (at/(2*time.Second))%2 == 0 {
					return 0.0, true
				}
				return 0.10, true
			},
		}
		cfg := session.DefaultConfig()
		cfg.SwitchMargin = margin
		cfg.SwitchConsecutive = consecutive
		mgr, err := session.NewManager(cfg, clk, drv)
		if err != nil {
			return 0, err
		}
		sess, err := mgr.Open("callee",
			session.Candidate{Relay: "steady", Est: 150 * time.Millisecond},
			[]session.Candidate{{Relay: "flappy", Est: 140 * time.Millisecond}}, 1)
		if err != nil {
			return 0, err
		}
		mgr.Start()
		clk.RunUntil(2 * time.Minute)
		switches := sess.Switches()
		mgr.Close()
		return switches, nil
	}
	naive, err := run(0, 1)
	if err != nil {
		return err
	}
	cfg := session.DefaultConfig()
	held, err := run(cfg.SwitchMargin, cfg.SwitchConsecutive)
	if err != nil {
		return err
	}
	fmt.Printf("   naive (switch on first better probe): %d switches in 2 min\n", naive)
	fmt.Printf("   hysteresis (margin %.1f MOS x %d probes): %d switches in 2 min\n\n",
		cfg.SwitchMargin, cfg.SwitchConsecutive, held)
	return nil
}

// stabilization runs the Table 4 experiment: time-to-recover after the
// active relay dies, session-managed vs Skype-like.
func stabilization() error {
	fmt.Println("=== 3. stabilization after relay death ===")
	cfg := eval.DefaultStabilizationConfig([]eval.PathGround{
		{Relay: "r0", RTT: 110 * time.Millisecond, Loss: 0.005},
		{Relay: "r1", RTT: 140 * time.Millisecond, Loss: 0.005},
		{Relay: "r2", RTT: 320 * time.Millisecond, Loss: 0.03},
		{Relay: "r3", RTT: 380 * time.Millisecond, Loss: 0.04},
		{Relay: "r4", RTT: 420 * time.Millisecond, Loss: 0.05},
		{Relay: "r5", RTT: 350 * time.Millisecond, Loss: 0.06},
	})
	cfg.FailAt = 21300 * time.Millisecond
	res, err := eval.RunStabilization(cfg)
	if err != nil {
		return err
	}
	fmt.Println("  ", res.ASAP)
	fmt.Println("  ", res.Baseline)
	fmt.Println("   (relay dies at", cfg.FailAt, "— detect/recover measured from there)")
	return nil
}
