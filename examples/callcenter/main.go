// Callcenter: an enterprise with offices on several continents routes its
// inter-office VoIP through ASAP relays, then a backbone AS congests
// mid-day and the relay choices adapt — the workload the paper's
// introduction motivates (stable quality for long-lived, repeated calls).
//
//	go run ./examples/callcenter
package main

import (
	"fmt"
	"os"
	"time"

	"asap"
	"asap/internal/cluster"
	"asap/internal/netmodel"
	"asap/internal/overlay"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "callcenter:", err)
		os.Exit(1)
	}
}

// office is one corporate site: a handful of softphones in one cluster.
type office struct {
	name   string
	phones []cluster.HostID
}

func run() error {
	world, err := asap.BuildWorld(asap.TinyProfile)
	if err != nil {
		return err
	}
	sys, err := asap.NewSystem(world, asap.DefaultParams())
	if err != nil {
		return err
	}
	eng := overlay.NewEngine(world.Model)

	// Pick 4 offices in distinct, mutually distant ASes: take the four
	// clusters whose pairwise direct RTTs are largest among a sample.
	offices, err := pickOffices(world, 4)
	if err != nil {
		return err
	}
	for _, o := range offices {
		fmt.Printf("office %-8s cluster with %d phones\n", o.name, len(o.phones))
	}

	scoreAll := func(label string) {
		var worst, sum float64
		worst = 5
		calls := 0
		for i := range offices {
			for j := i + 1; j < len(offices); j++ {
				a := offices[i].phones[0]
				b := offices[j].phones[0]
				direct, ok := world.Model.HostRTT(a, b)
				if !ok {
					continue
				}
				best := direct
				used := "direct"
				if direct >= asap.QualityRTT {
					if sel, err := sys.SelectCloseRelay(a, b); err == nil {
						for _, path := range sys.PickRelays(sel, 3) {
							var p overlay.Path
							var ok bool
							if len(path) == 1 {
								p, ok = eng.OneHop(a, path[0], b)
							} else {
								p, ok = eng.TwoHop(a, path[0], path[1], b)
							}
							if ok && p.RTT < best {
								best = p.RTT
								used = p.Kind.String()
							}
						}
					}
				}
				mos := asap.MOSFromRTT(best, 0.005, asap.CodecG729A)
				sum += mos
				calls++
				if mos < worst {
					worst = mos
				}
				fmt.Printf("  %s <-> %s: direct %4dms, voice via %-6s RTT %4dms, MOS %.2f\n",
					offices[i].name, offices[j].name,
					direct.Milliseconds(), used, best.Milliseconds(), mos)
			}
		}
		fmt.Printf("%s: mean MOS %.2f, worst %.2f over %d routes\n\n",
			label, sum/float64(calls), worst, calls)
	}

	fmt.Println("\n== morning: normal backbone")
	scoreAll("morning")

	// Mid-day: congest the transit AS that the two farthest offices
	// route through.
	a := offices[0].phones[0]
	b := offices[len(offices)-1].phones[0]
	ha := world.Pop.Host(a)
	hb := world.Pop.Host(b)
	path, ok := world.Router.Path(ha.AS, hb.AS)
	if !ok || len(path) < 3 {
		return fmt.Errorf("no transit AS between the far offices")
	}
	victim := path[len(path)/2]
	fmt.Printf("== midday: AS%d on the %s-%s route congests (+150ms one way)\n",
		victim, offices[0].name, offices[len(offices)-1].name)
	world.Model.SetCondition(victim, netmodel.Condition{
		ExtraOneWay: 150 * time.Millisecond,
		LossRate:    0.02,
	})
	scoreAll("midday")
	return nil
}

func pickOffices(world *asap.World, n int) ([]office, error) {
	names := []string{"NYC", "London", "Shanghai", "Austin", "Munich", "Osaka"}
	// Greedy farthest-point selection over cluster delegates.
	clusters := world.Pop.Clusters()
	if len(clusters) < n {
		return nil, fmt.Errorf("world too small for %d offices", n)
	}
	chosen := []cluster.ClusterID{clusters[0].ID}
	for len(chosen) < n {
		var best cluster.ClusterID = -1
		var bestMin time.Duration = -1
		for _, c := range clusters {
			if len(c.Hosts) < 2 {
				continue
			}
			already := false
			for _, id := range chosen {
				if id == c.ID {
					already = true
				}
			}
			if already {
				continue
			}
			min := time.Duration(1<<62 - 1)
			for _, id := range chosen {
				rtt, ok := world.Model.ClusterRTT(c.ID, id)
				if !ok {
					min = -1
					break
				}
				if rtt < min {
					min = rtt
				}
			}
			if min > bestMin {
				best, bestMin = c.ID, min
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("could not place office %d", len(chosen)+1)
		}
		chosen = append(chosen, best)
	}
	out := make([]office, 0, n)
	for i, id := range chosen {
		c := world.Pop.Cluster(id)
		phones := c.Hosts
		if len(phones) > 4 {
			phones = phones[:4]
		}
		out = append(out, office{name: names[i%len(names)], phones: phones})
	}
	return out, nil
}
