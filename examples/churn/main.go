// Churn: surrogates fail and recover while calls keep being placed. The
// example demonstrates ASAP's failover duties — bootstrap re-seats
// surrogates (Section 6.1, bootstrap duty 4), replacements rebuild close
// cluster sets on demand, and relay selection keeps succeeding.
//
//	go run ./examples/churn
package main

import (
	"fmt"
	"os"

	"asap"
	"asap/internal/cluster"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "churn:", err)
		os.Exit(1)
	}
}

func run() error {
	world, err := asap.BuildWorld(asap.TinyProfile)
	if err != nil {
		return err
	}
	sys, err := asap.NewSystem(world, asap.DefaultParams())
	if err != nil {
		return err
	}

	sessions := world.LatentSessions(world.RandomSessions(world.Profile.Sessions), asap.QualityRTT)
	if len(sessions) < 2 {
		return fmt.Errorf("not enough latent sessions")
	}
	if len(sessions) > 8 {
		sessions = sessions[:8]
	}

	// Baseline round: run every session once so close sets exist.
	fmt.Println("== round 1: warm up close cluster sets")
	usedClusters := make(map[cluster.ClusterID]bool)
	for i, s := range sessions {
		sel, err := sys.SelectCloseRelay(s.A, s.B)
		if err != nil {
			fmt.Printf("  session %d: %v\n", i, err)
			continue
		}
		for _, oc := range sel.OneHop {
			usedClusters[oc.Cluster] = true
		}
		fmt.Printf("  session %d: %d one-hop clusters, %d msgs\n",
			i, len(sel.OneHop), sel.Messages)
	}
	fmt.Printf("  background close-set build cost so far: %d messages\n\n", sys.BuildMessages())

	// Kill the surrogate of every cluster the sessions relied on, plus
	// the endpoints' own surrogates — three waves of churn.
	fmt.Println("== churn: killing surrogates of every involved cluster")
	killed := 0
	for cid := range usedClusters {
		if sur, ok := sys.Surrogate(cid); ok {
			sys.FailHost(sur)
			killed++
		}
	}
	for _, s := range sessions {
		for _, cid := range []cluster.ClusterID{world.Pop.Host(s.A).Cluster, world.Pop.Host(s.B).Cluster} {
			if sur, ok := sys.Surrogate(cid); ok && sur != s.A && sur != s.B {
				sys.FailHost(sur)
				killed++
			}
		}
	}
	fmt.Printf("  killed %d surrogates\n", killed)

	reelected, dead := 0, 0
	for cid := range usedClusters {
		if _, ok := sys.Surrogate(cid); ok {
			reelected++
		} else {
			dead++
		}
	}
	fmt.Printf("  re-elected: %d clusters, fully dead: %d clusters\n\n", reelected, dead)

	// Round 2: selection still works; rebuilt close sets cost messages.
	fmt.Println("== round 2: selection after churn")
	before := sys.BuildMessages()
	okCount := 0
	for i, s := range sessions {
		if !sys.Alive(s.A) || !sys.Alive(s.B) {
			fmt.Printf("  session %d: endpoint died in churn, skipped\n", i)
			continue
		}
		sel, err := sys.SelectCloseRelay(s.A, s.B)
		if err != nil {
			fmt.Printf("  session %d: %v\n", i, err)
			continue
		}
		okCount++
		fmt.Printf("  session %d: %d one-hop clusters, %d msgs\n",
			i, len(sel.OneHop), sel.Messages)
	}
	fmt.Printf("  sessions still served: %d/%d\n", okCount, len(sessions))
	fmt.Printf("  close-set rebuild cost: %d messages\n", sys.BuildMessages()-before)
	return nil
}
