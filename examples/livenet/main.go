// Livenet: a real ASAP deployment over TCP on localhost — one bootstrap
// and three peers in separate goroutines (the same code cmd/asapd runs as
// separate processes). Peers join, elect themselves surrogates of their
// prefix clusters, ping-build close sets, and place a relayed call.
//
//	go run ./examples/livenet
package main

import (
	"fmt"
	"os"
	"time"

	"asap"
	"asap/internal/asgraph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "livenet:", err)
		os.Exit(1)
	}
}

func run() error {
	tr := asap.NewTCPTransport()
	defer func() { _ = tr.Close() }()

	// The demo AS world: two distant stubs (AS100, AS200) and a
	// multi-homed middle AS300 — Figure 4's shortcut in miniature.
	b := asgraph.NewBuilder()
	b.AddEdge(1, 2, asgraph.RelP2P)
	b.AddEdge(10, 1, asgraph.RelC2P)
	b.AddEdge(20, 2, asgraph.RelC2P)
	b.AddEdge(100, 10, asgraph.RelC2P)
	b.AddEdge(200, 20, asgraph.RelC2P)
	b.AddEdge(300, 10, asgraph.RelC2P)
	b.AddEdge(300, 20, asgraph.RelC2P)

	bs, err := asap.NewBootstrap(tr, "127.0.0.1:0", asap.BootstrapConfig{
		Graph: b.Build(),
		K:     4,
		Prefixes: []asap.PrefixOrigin{
			{Prefix: "10.100.0.0/16", ASN: 100},
			{Prefix: "10.200.0.0/16", ASN: 200},
			{Prefix: "10.30.0.0/16", ASN: 300},
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("bootstrap on %s\n", bs.Addr())

	params := asap.DefaultParams()
	mk := func(ip string, kbps float64) (*asap.Node, error) {
		n, err := asap.NewPeer(tr, "127.0.0.1:0", asap.NodeConfig{
			IP:        ip,
			Bootstrap: bs.Addr(),
			Params:    params,
			Nodal:     asap.NodalInfo{BandwidthKbps: kbps, CPUScore: 1},
		})
		if err != nil {
			return nil, err
		}
		fmt.Printf("peer %-21s ip %-12s cluster %-14s surrogate=%v\n",
			n.Addr(), ip, n.ClusterKey(), n.IsSurrogate())
		return n, nil
	}
	relay, err := mk("10.30.0.1", 10000)
	if err != nil {
		return err
	}
	alice, err := mk("10.100.0.7", 1500)
	if err != nil {
		return err
	}
	bob, err := mk("10.200.0.9", 1500)
	if err != nil {
		return err
	}

	// Everyone refreshes close sets now that all surrogates exist.
	for _, n := range []*asap.Node{relay, alice, bob} {
		if err := n.RefreshCloseSet(); err != nil {
			return err
		}
	}

	// On loopback every path is sub-millisecond, so the call goes direct;
	// the point is the full live protocol executing end to end.
	choice, err := alice.SetupCall(bob.Addr())
	if err != nil {
		return err
	}
	via := "direct"
	if choice.Relay != "" {
		via = "relay " + string(choice.Relay)
	}
	fmt.Printf("\nalice -> bob: %s (direct %v, est %v, candidates %d)\n",
		via, choice.Direct.Round(time.Microsecond),
		choice.EstRTT.Round(time.Microsecond), choice.Candidates)

	payload := []byte("RTP batch: 20 G.729A frames")
	for seq := uint32(1); seq <= 5; seq++ {
		if err := alice.SendVoice(choice, bob.Addr(), payload, seq); err != nil {
			return err
		}
	}
	fmt.Printf("bob received %d voice bytes over TCP\n", bob.ReceivedBytes())

	// Force a relayed voice path to exercise forwarding live: pretend the
	// selection chose the relay peer.
	forced := &asap.RelayChoice{Relay: relay.Addr(), EstRTT: choice.EstRTT}
	if err := alice.SendVoice(forced, bob.Addr(), payload, 6); err != nil {
		return err
	}
	fmt.Printf("after forced relay hop, bob has %d bytes (relay forwarded, consumed none)\n",
		bob.ReceivedBytes())
	return nil
}
