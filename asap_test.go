package asap_test

import (
	"testing"
	"time"

	"asap"
	"asap/internal/asgraph"
	"asap/internal/overlay"
)

// TestFacadeEndToEnd drives the whole public surface the way the README
// quickstart does: build a world, run ASAP, verify relays against ground
// truth, and compare with the baselines.
func TestFacadeEndToEnd(t *testing.T) {
	world, err := asap.BuildWorld(asap.TinyProfile)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := asap.NewSystem(world, asap.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	sessions := world.RandomSessions(world.Profile.Sessions)
	latent := world.LatentSessions(sessions, asap.QualityRTT)
	if len(latent) == 0 {
		t.Skip("no latent sessions at tiny scale")
	}
	s := latent[0]

	sel, err := sys.SelectCloseRelay(s.A, s.B)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Messages < 4 {
		t.Errorf("messages = %d, want >= 4", sel.Messages)
	}
	relays := sys.PickRelays(sel, 3)
	eng := overlay.NewEngine(world.Model)
	improved := false
	direct, _ := world.DirectRTT(s)
	for _, path := range relays {
		var p overlay.Path
		var ok bool
		switch len(path) {
		case 1:
			p, ok = eng.OneHop(s.A, path[0], s.B)
		case 2:
			p, ok = eng.TwoHop(s.A, path[0], path[1], s.B)
		}
		if ok && p.RTT < direct {
			improved = true
		}
	}
	if len(relays) > 0 && !improved {
		t.Error("no picked relay improved on the latent direct path")
	}
}

func TestFacadeComparisonAndMOS(t *testing.T) {
	world, err := asap.BuildWorld(asap.TinyProfile)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := asap.NewSystem(world, asap.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	latent := world.LatentSessions(world.RandomSessions(world.Profile.Sessions), asap.QualityRTT)
	if len(latent) < 2 {
		t.Skip("too few latent sessions")
	}
	if len(latent) > 6 {
		latent = latent[:6]
	}
	d, r, m, err := world.NewBaselines(15, 30, 8, 20)
	if err != nil {
		t.Fatal(err)
	}
	cmp := asap.RunComparison([]asap.Method{
		asap.NewBaselineMethod(d, world.Engine),
		asap.NewBaselineMethod(r, world.Engine),
		asap.NewBaselineMethod(m, world.Engine),
		asap.NewASAPMethod(sys, world.Engine),
		asap.NewOPTMethod(world.Engine),
	}, latent, world.Profile.Seed, 0)
	if got := len(cmp.Order); got != 5 {
		t.Fatalf("methods = %d", got)
	}

	// MOS helper sanity through the facade.
	if mos := asap.MOSFromRTT(100*time.Millisecond, 0.005, asap.CodecG729A); mos < 3.8 {
		t.Errorf("facade MOS = %v", mos)
	}
	if asap.QualityRTT != 300*time.Millisecond {
		t.Errorf("QualityRTT = %v", asap.QualityRTT)
	}
	if asap.SatisfactionMOS != 3.6 {
		t.Errorf("SatisfactionMOS = %v", asap.SatisfactionMOS)
	}
}

// TestFacadeLiveDeployment runs the actor layer through the facade over
// the in-memory transport.
func TestFacadeLiveDeployment(t *testing.T) {
	tr := asap.NewMemTransport()
	defer func() { _ = tr.Close() }()

	b := asgraph.NewBuilder()
	b.AddEdge(10, 1, asgraph.RelC2P)
	b.AddEdge(20, 1, asgraph.RelC2P)
	bs, err := asap.NewBootstrap(tr, "bs", asap.BootstrapConfig{
		Graph: b.Build(),
		Prefixes: []asap.PrefixOrigin{
			{Prefix: "10.1.0.0/16", ASN: 10},
			{Prefix: "10.2.0.0/16", ASN: 20},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := asap.NewPeer(tr, "a", asap.NodeConfig{
		IP: "10.1.0.1", Bootstrap: bs.Addr(), Params: asap.DefaultParams(),
		Nodal: asap.NodalInfo{BandwidthKbps: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := asap.NewPeer(tr, "c", asap.NodeConfig{
		IP: "10.2.0.1", Bootstrap: bs.Addr(), Params: asap.DefaultParams(),
		Nodal: asap.NodalInfo{BandwidthKbps: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	choice, err := a.SetupCall(c.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.SendVoice(choice, c.Addr(), []byte("xyz"), 1); err != nil {
		t.Fatal(err)
	}
	if c.ReceivedBytes() != 3 {
		t.Errorf("received %d bytes, want 3", c.ReceivedBytes())
	}
}
