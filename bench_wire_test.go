// Wire-path benchmarks (DESIGN.md §15): the binary Message codec
// against the gob encoding it replaced, the live framed round trip on
// loopback TCP, and the batched probe protocol's round-trip economy on
// the virtual clock. `make bench-wire` runs these; CI publishes the
// output as the BENCH_wire.json artifact and the tracked numbers live
// in results/BENCH_wire.json.
package asap_test

import (
	"bytes"
	"encoding/gob"
	"sync/atomic"
	"testing"
	"time"

	"asap/internal/asgraph"
	"asap/internal/core"
	"asap/internal/session"
	"asap/internal/sim"
	"asap/internal/transport"
)

// wireBenchMessages is the codec workload: one message per traffic
// class the hot path actually carries — pings (the overwhelming
// majority), close-set replies (the largest control messages), voice
// batches (the payload-heavy class) and batched probe replies.
func wireBenchMessages() []*transport.Message {
	frames := make([]byte, 160) // one 20 ms G.729A batch
	for i := range frames {
		frames[i] = byte(i)
	}
	return []*transport.Message{
		{Type: transport.MsgPing, From: "10.1.2.3:4000", SentAt: 123456789 * time.Nanosecond},
		{Type: transport.MsgGetCloseSetReply, From: "s1", CloseSet: []transport.CloseEntry{
			{ClusterKey: "10.1.0.0/24", SurrogateAddr: "s2", RTT: 12 * time.Millisecond},
			{ClusterKey: "10.2.0.0/24", SurrogateAddr: "s3", RTT: 48 * time.Millisecond},
			{ClusterKey: "10.3.0.0/24", SurrogateAddr: "s4", RTT: 96 * time.Millisecond},
			{ClusterKey: "10.4.0.0/24", SurrogateAddr: "s5", RTT: 160 * time.Millisecond},
		}},
		{Type: transport.MsgVoice, From: "a", Dst: "b", FlowID: 42, Seq: 9000, Frames: frames},
		{Type: transport.MsgProbeBatchReply, From: "r1", ProbeRTTs: []time.Duration{
			15 * time.Millisecond, 30 * time.Millisecond, -1,
		}},
	}
}

func reportMsgsPerSec(b *testing.B) {
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/s")
}

// BenchmarkWireEncode compares binary-codec encoding against the gob
// encoding the wire used before (one fresh encoder per message, exactly
// as the old writeFrame worked). The binary arm reuses its buffer the
// way writeFrame's pooled buffers do, so allocs/op is the steady-state
// number the allocation gate enforces.
func BenchmarkWireEncode(b *testing.B) {
	msgs := wireBenchMessages()
	b.Run("Binary", func(b *testing.B) {
		var buf []byte
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = transport.AppendMessage(buf[:0], msgs[i%len(msgs)])
		}
		reportMsgsPerSec(b)
	})
	b.Run("Gob", func(b *testing.B) {
		var buf bytes.Buffer
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := gob.NewEncoder(&buf).Encode(msgs[i%len(msgs)]); err != nil {
				b.Fatal(err)
			}
		}
		reportMsgsPerSec(b)
	})
}

// BenchmarkWireDecode compares binary-codec decoding into pooled
// Messages against gob decoding (one fresh decoder per message, as the
// old readFrame worked).
func BenchmarkWireDecode(b *testing.B) {
	msgs := wireBenchMessages()
	bin := make([][]byte, len(msgs))
	gobs := make([][]byte, len(msgs))
	for i, m := range msgs {
		bin[i] = transport.AppendMessage(nil, m)
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(m); err != nil {
			b.Fatal(err)
		}
		gobs[i] = buf.Bytes()
	}
	b.Run("Binary", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m := transport.AcquireMessage()
			if err := transport.DecodeMessage(bin[i%len(bin)], m); err != nil {
				b.Fatal(err)
			}
			transport.ReleaseMessage(m)
		}
		reportMsgsPerSec(b)
	})
	b.Run("Gob", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var m transport.Message
			if err := gob.NewDecoder(bytes.NewReader(gobs[i%len(gobs)])).Decode(&m); err != nil {
				b.Fatal(err)
			}
		}
		reportMsgsPerSec(b)
	})
}

// BenchmarkWireTCPCall measures the full framed round trip on loopback
// with the pool discipline the protocol actors use: acquire the
// request, release it after Call, release the pooled response.
func BenchmarkWireTCPCall(b *testing.B) {
	tcp := transport.NewTCP()
	defer func() { _ = tcp.Close() }()
	addr, err := tcp.Serve("127.0.0.1:0", func(_ transport.Addr, m *transport.Message) (*transport.Message, error) {
		resp := transport.AcquireMessage()
		resp.Type = transport.MsgPong
		resp.SentAt = m.SentAt
		return resp, nil
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := transport.AcquireMessage()
		req.Type = transport.MsgPing
		req.From = "cli"
		req.SentAt = time.Duration(i)
		resp, err := tcp.Call(addr, req)
		transport.ReleaseMessage(req)
		if err != nil {
			b.Fatal(err)
		}
		transport.ReleaseMessage(resp)
	}
	reportMsgsPerSec(b)
}

// countingTransport counts the caller's outgoing wire round trips. Only
// the probing node runs on it; the receiver side (a relay pinging its
// far legs) uses the wrapped transport directly, because those hops are
// the receiver's cost, not the caller's.
type countingTransport struct {
	*transport.Mem
	calls atomic.Int64
}

func (c *countingTransport) Call(to transport.Addr, req *transport.Message) (*transport.Message, error) {
	c.calls.Add(1)
	return c.Mem.Call(to, req)
}

// wireProbeWorld builds the 5-node latency-emulated deployment the core
// batched-probe tests pin (internal/core/probebatch_test.go): a
// bootstrap, two relays and two callees on a virtual clock, with the
// caller's transport wrapped to count round trips.
func wireProbeWorld(b *testing.B) (*sim.Clock, *core.Node, *countingTransport) {
	b.Helper()
	gb := asgraph.NewBuilder()
	gb.AddNode(asgraph.Node{ASN: 1, Tier: asgraph.TierT1, X: 0, Y: 0})
	gb.AddNode(asgraph.Node{ASN: 2, Tier: asgraph.TierT1, X: 1000, Y: 0})
	gb.AddNode(asgraph.Node{ASN: 10, Tier: asgraph.TierTransit, X: 0, Y: 500})
	gb.AddNode(asgraph.Node{ASN: 20, Tier: asgraph.TierTransit, X: 1000, Y: 500})
	gb.AddNode(asgraph.Node{ASN: 100, Tier: asgraph.TierStub, X: 0, Y: 1000})
	gb.AddNode(asgraph.Node{ASN: 200, Tier: asgraph.TierStub, X: 1000, Y: 1000})
	gb.AddNode(asgraph.Node{ASN: 300, Tier: asgraph.TierStub, X: 500, Y: 800})
	gb.AddEdge(1, 2, asgraph.RelP2P)
	gb.AddEdge(10, 1, asgraph.RelC2P)
	gb.AddEdge(20, 2, asgraph.RelC2P)
	gb.AddEdge(100, 10, asgraph.RelC2P)
	gb.AddEdge(200, 20, asgraph.RelC2P)
	gb.AddEdge(300, 10, asgraph.RelC2P)
	gb.AddEdge(300, 20, asgraph.RelC2P)

	clk := &sim.Clock{}
	mem := transport.NewMem()
	mem.Sched = clk
	b.Cleanup(func() { _ = mem.Close() })
	_, err := core.NewBootstrap(mem, "bs", core.BootstrapConfig{
		Graph: gb.Build(),
		K:     4,
		Prefixes: []core.PrefixOrigin{
			{Prefix: "10.100.0.0/16", ASN: 100},
			{Prefix: "10.200.0.0/16", ASN: 200},
			{Prefix: "10.30.0.0/16", ASN: 300},
			{Prefix: "10.10.0.0/16", ASN: 10},
			{Prefix: "10.20.0.0/16", ASN: 20},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	ctr := &countingTransport{Mem: mem}
	ips := map[string]string{
		"c": "10.100.0.1", "r1": "10.30.0.1", "r2": "10.10.0.1",
		"d1": "10.200.0.1", "d2": "10.20.0.1",
	}
	var caller *core.Node
	// Joining pings peer surrogates with clock waiters, so construction
	// runs as a clock task.
	clk.RunTask(func() {
		for _, name := range []string{"c", "r1", "r2", "d1", "d2"} {
			tr := transport.Transport(mem)
			if name == "c" {
				tr = ctr
			}
			n, err := core.NewNode(tr, transport.Addr(name), core.NodeConfig{
				IP:        ips[name],
				Bootstrap: "bs",
				Params:    core.DefaultParams(),
				Sched:     clk,
			})
			if err != nil {
				b.Errorf("node %s: %v", name, err)
				return
			}
			if name == "c" {
				caller = n
			}
		}
	})
	if b.Failed() {
		b.FailNow()
	}
	// Latency goes live only after the joins settle; unlisted pairs are
	// free links. Nothing is in flight here, so the assignment is safe.
	lat := map[[2]transport.Addr]time.Duration{
		{"c", "r1"}:  10 * time.Millisecond,
		{"c", "r2"}:  25 * time.Millisecond,
		{"c", "d1"}:  40 * time.Millisecond,
		{"c", "d2"}:  45 * time.Millisecond,
		{"r1", "d1"}: 15 * time.Millisecond,
		{"r1", "d2"}: 30 * time.Millisecond,
		{"r2", "d1"}: 5 * time.Millisecond,
		{"r2", "d2"}: 20 * time.Millisecond,
	}
	mem.Latency = func(from, to transport.Addr) time.Duration {
		if d, ok := lat[[2]transport.Addr{from, to}]; ok {
			return d
		}
		return lat[[2]transport.Addr{to, from}]
	}
	return clk, caller, ctr
}

// BenchmarkWireProbeBatch measures one session-monitor probe tick for a
// caller carrying two concurrent calls over a shared relay pool — the
// workload MsgProbeBatch coalesces. The scalar arm issues one round
// trip per path; the batched arm groups paths per wire destination, so
// roundtrips/tick is the wire saving and ns/op the scheduler saving.
func BenchmarkWireProbeBatch(b *testing.B) {
	reqs := []session.PathRequest{
		{Relay: "r1", Callee: "d1"},
		{Relay: "r1", Callee: "d2"},
		{Relay: "r2", Callee: "d1"},
		{Relay: "r2", Callee: "d2"},
		{Relay: "", Callee: "d1"},
		{Relay: "", Callee: "d2"},
		{Relay: "r1", Callee: "d1"}, // the active path doubles as a candidate
	}
	b.Run("Scalar", func(b *testing.B) {
		clk, caller, ctr := wireProbeWorld(b)
		ctr.calls.Store(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var probeErr error
			clk.RunTask(func() {
				for _, r := range reqs {
					if _, _, err := caller.ProbePath(r.Relay, r.Callee); err != nil {
						probeErr = err
						return
					}
				}
			})
			if probeErr != nil {
				b.Fatal(probeErr)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(ctr.calls.Load())/float64(b.N), "roundtrips/tick")
	})
	b.Run("Batched", func(b *testing.B) {
		clk, caller, ctr := wireProbeWorld(b)
		ctr.calls.Store(0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var out []session.PathResult
			clk.RunTask(func() { out = caller.ProbePaths(reqs) })
			for j := range out {
				if out[j].Err != nil {
					b.Fatal(out[j].Err)
				}
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(ctr.calls.Load())/float64(b.N), "roundtrips/tick")
	})
}
