// Chaos data-plane benchmarks (make bench-chaos-dataplane): the 4x4 NAT
// traversal matrix re-run under seeded packet loss, one sub-benchmark per
// loss rate. The reported punch-success / establish-success / relay
// fractions trace the degradation curve of the traversal ladder as the
// public network gets worse — on the virtual clock, so every metric
// except ns/op is deterministic and diffable across commits.
package asap_test

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"asap/internal/nat"
	"asap/internal/sim"
	"asap/internal/transport"
	"asap/internal/transport/udp"
)

// chaosLossRates is the loss sweep: mild jitter-buffer territory, heavy
// congestion, and outright pathological loss.
var chaosLossRates = []float64{0.05, 0.15, 0.30}

// BenchmarkChaosDataplaneTraversal climbs the ladder for every NAT
// pairing under each loss rate. Metrics per rate:
//
//	establish-success — pairs that landed on any rung at all
//	punch-success     — pairs that landed direct or punched (no relay);
//	                    0.8125 on a clean network (13 of 16 pairings —
//	                    three are forced onto the relay by symmetric
//	                    NATs), so any drop below that is loss pushing
//	                    calls onto the relay
//	relay-fraction    — established pairs that needed the relay rung
//	p99-establish-ms  — p99 virtual-time setup cost, relay rungs included
func BenchmarkChaosDataplaneTraversal(b *testing.B) {
	for _, loss := range chaosLossRates {
		loss := loss
		b.Run(fmt.Sprintf("loss%d", int(loss*100+0.5)), func(b *testing.B) {
			var established, punched, relayed, total int
			var latencies []time.Duration
			for i := 0; i < b.N; i++ {
				established, punched, relayed, total = 0, 0, 0, 0
				latencies = latencies[:0]
				for _, ta := range nat.Types {
					for _, tb := range nat.Types {
						total++
						seed := int64(ta)*37 + int64(tb)*11 + int64(loss*100)
						kind, d, ok := chaosTraversePair(b, ta, tb, loss, seed)
						if !ok {
							continue
						}
						established++
						latencies = append(latencies, d)
						if kind == udp.PathRelayed {
							relayed++
						} else {
							punched++
						}
					}
				}
			}
			b.ReportMetric(float64(established)/float64(total), "establish-success")
			b.ReportMetric(float64(punched)/float64(total), "punch-success")
			if established > 0 {
				b.ReportMetric(float64(relayed)/float64(established), "relay-fraction")
			}
			sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
			if n := len(latencies); n > 0 {
				p99 := latencies[(n*99+99)/100-1]
				b.ReportMetric(float64(p99)/float64(time.Millisecond), "p99-establish-ms")
			}
		})
	}
}

// chaosTraversePair is traversePair with a Chaos packet decorator under
// the NAT boxes: every public datagram — Syns, STUN, relay binds — rolls
// the seeded loss dice. Returns the caller's landing rung, the virtual
// establishment latency, and whether both sides came up.
func chaosTraversePair(b *testing.B, ta, tb nat.Type, loss float64, seed int64) (udp.PathKind, time.Duration, bool) {
	b.Helper()
	clk := sim.NewClock()
	pub := transport.NewMem()
	pub.Sched = clk
	pub.Latency = func(from, to transport.Addr) time.Duration { return 5 * time.Millisecond }
	defer func() { _ = pub.Close() }()

	chaos := transport.NewChaos(nil, seed)
	chaos.Sched = clk
	chaos.DropDefault(loss)
	lossy := chaos.PacketNetwork(pub)

	stun, err := udp.NewSTUNServer(lossy, "stun.example:3478")
	if err != nil {
		b.Fatal(err)
	}
	relay, err := udp.NewRelayServer(lossy, "relay.example:5000")
	if err != nil {
		b.Fatal(err)
	}
	boxA := nat.New(ta, lossy, "203.0.113.1", 40000)
	boxB := nat.New(tb, lossy, "198.51.100.1", 41000)
	defer func() { _ = boxA.Close(); _ = boxB.Close() }()

	cfg := udp.DefaultConfig()
	cfg.StunTries = 12 // measure the ladder under loss, not STUN retry luck
	epA, err := udp.NewEndpoint(boxA, clk, cfg)
	if err != nil {
		b.Fatal(err)
	}
	epB, err := udp.NewEndpoint(boxB, clk, cfg)
	if err != nil {
		b.Fatal(err)
	}
	token := relay.Allocate()
	fa, err := epA.Open("10.0.0.2:5000", token)
	if err != nil {
		b.Fatal(err)
	}
	fb, err := epB.Open("192.168.1.2:5000", token)
	if err != nil {
		b.Fatal(err)
	}

	var start, end time.Duration
	var kind udp.PathKind
	ok := true
	clk.RunTask(func() {
		extA, err := fa.Discover(stun.Addr())
		if err != nil {
			ok = false
			return
		}
		extB, err := fb.Discover(stun.Addr())
		if err != nil {
			ok = false
			return
		}
		start = clk.Now()
		done := 0
		dw := clk.NewWaiter()
		est := func(f *udp.Flow, peer transport.Addr, caller bool) {
			clk.Go(func() {
				k, err := f.Establish(peer, relay.Addr(), caller)
				if err != nil {
					ok = false
				} else if caller {
					kind = k
				}
				if done++; done == 2 {
					dw.Wake()
				}
			})
		}
		est(fa, extB, true)
		est(fb, extA, false)
		dw.Wait(-1)
		end = clk.Now()
	})
	return kind, end - start, ok
}
