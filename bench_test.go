// Benchmarks: one per table and figure of the paper (see the
// per-experiment index in DESIGN.md), plus ablations for the design
// choices the protocol depends on (valley-free BFS bound K, two-hop
// expansion, policy routing, prefix matching, the E-Model, Gao
// inference, and both transports).
//
// Each figure bench measures the marginal cost of regenerating that
// figure's data for one unit of work (a session, a sweep, a study run);
// world construction is cached across benches.
package asap_test

import (
	"sync"
	"testing"
	"time"

	"asap"
	"asap/internal/asgraph"
	"asap/internal/baseline"
	"asap/internal/bgp"
	"asap/internal/cluster"
	"asap/internal/core"
	"asap/internal/eval"
	"asap/internal/netmodel"
	"asap/internal/overlay"
	"asap/internal/session"
	"asap/internal/sim"
	"asap/internal/skype"
	"asap/internal/transport"
)

// benchState caches the expensive fixtures across benchmarks.
type benchState struct {
	world   *asap.World
	sess    []eval.Session
	latent  []eval.Session
	sys     *core.System
	dedi    *baseline.Dedi
	rand    *baseline.Rand
	mix     *baseline.Mix
	methods map[string]eval.Method
}

var (
	benchOnce sync.Once
	bench     benchState

	scaledOnce  sync.Once
	scaledState benchState
)

func benchWorld(b *testing.B) *benchState {
	b.Helper()
	benchOnce.Do(func() {
		w, err := asap.BuildWorld(asap.TinyProfile)
		if err != nil {
			b.Fatal(err)
		}
		bench.world = w
		bench.sess = w.RandomSessions(w.Profile.Sessions)
		bench.latent = w.LatentSessions(bench.sess, netmodel.QualityRTT)
		sys, err := asap.NewSystem(w, asap.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		bench.sys = sys
		d, r, m, err := w.NewBaselines(40, 100, 20, 60)
		if err != nil {
			b.Fatal(err)
		}
		bench.dedi, bench.rand, bench.mix = d, r, m
		bench.methods = map[string]eval.Method{
			"DEDI": eval.NewBaselineMethod(d, w.Engine),
			"RAND": eval.NewBaselineMethod(r, w.Engine),
			"MIX":  eval.NewBaselineMethod(m, w.Engine),
			"ASAP": eval.NewASAPMethod(sys, w.Engine),
			"OPT":  eval.NewOPTMethod(w.Engine),
		}
	})
	if len(bench.latent) == 0 {
		b.Skip("no latent sessions at bench scale")
	}
	return &bench
}

func scaledWorld(b *testing.B) *benchState {
	b.Helper()
	scaledOnce.Do(func() {
		p := asap.TinyProfile
		p.Name = "tiny-scaled"
		p.Hosts *= 2
		w, err := asap.BuildWorld(p)
		if err != nil {
			b.Fatal(err)
		}
		scaledState.world = w
		scaledState.sess = w.RandomSessions(p.Sessions)
		scaledState.latent = w.LatentSessions(scaledState.sess, netmodel.QualityRTT)
		sys, err := asap.NewSystem(w, asap.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		scaledState.sys = sys
	})
	return &scaledState
}

// --- Section 3 figures ---

// BenchmarkFig2a regenerates the direct-RTT distribution (Figure 2(a)):
// one full pass over the session workload per iteration.
func BenchmarkFig2a(b *testing.B) {
	st := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		over := 0
		for _, s := range st.sess {
			if rtt, ok := st.world.DirectRTT(s); ok && rtt > netmodel.QualityRTT {
				over++
			}
		}
		if over == 0 {
			b.Fatal("no latent sessions")
		}
	}
}

// BenchmarkFig2b measures the optimal one-hop sweep behind Figure 2(b):
// one session's exhaustive relay search per iteration.
func BenchmarkFig2b(b *testing.B) {
	st := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := st.sess[i%len(st.sess)]
		if _, ok := st.world.Engine.OptimalOneHop(s.A, s.B); !ok {
			b.Fatal("no one-hop path")
		}
	}
}

// BenchmarkFig3a regenerates the RTT-reduction-rate series (Figure 3(a)).
func BenchmarkFig3a(b *testing.B) {
	st := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := st.sess[i%len(st.sess)]
		direct, ok1 := st.world.DirectRTT(s)
		opt, ok2 := st.world.Engine.OptimalOneHop(s.A, s.B)
		if ok1 && ok2 && opt.RTT < direct {
			_ = float64(direct-opt.RTT) / float64(direct)
		}
	}
}

// BenchmarkFig3b regenerates the latent-session rescue data (Figure 3(b)).
func BenchmarkFig3b(b *testing.B) {
	st := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := st.latent[i%len(st.latent)]
		if _, ok := st.world.Engine.OptimalOneHop(s.A, s.B); !ok {
			b.Fatal("latent session with no relay")
		}
	}
}

// --- Section 5: the Skype study ---

func benchSkypeClient(b *testing.B, st *benchState) *skype.Client {
	b.Helper()
	cfg := skype.DefaultConfig()
	cfg.CallDuration = 60 * time.Second
	c, err := skype.NewClient(st.world.Model, st.world.Prober, cfg, st.world.RNG)
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkTable1Fig5 builds the 17-site / 14-session study layout.
func BenchmarkTable1Fig5(b *testing.B) {
	st := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := skype.BuildStudyLayout(st.world.Pop, st.world.Graph, st.world.Model, st.world.RNG); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6 simulates one Skype-like call and extracts its relay-path
// time series (Figure 6).
func BenchmarkFig6(b *testing.B) {
	st := benchWorld(b)
	c := benchSkypeClient(b, st)
	s := st.latent[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := c.Call(i, s.A, s.B)
		if err != nil {
			b.Fatal(err)
		}
		if len(skype.TimeSeries(tr)) == 0 {
			b.Fatal("empty time series")
		}
	}
}

// BenchmarkTable2Fig7 simulates a call and runs the full trace analysis
// (Table 2 and Figures 7(a)-(c)).
func BenchmarkTable2Fig7(b *testing.B) {
	st := benchWorld(b)
	c := benchSkypeClient(b, st)
	s := st.latent[len(st.latent)-1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := c.Call(i, s.A, s.B)
		if err != nil {
			b.Fatal(err)
		}
		a := skype.Analyze(tr, st.world.Pop)
		if a.ProbedNodes == 0 {
			b.Fatal("no probes analyzed")
		}
	}
}

// --- Section 7 figures ---

func benchMethodOnLatent(b *testing.B, name string) {
	st := benchWorld(b)
	m := st.methods[name]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := st.latent[i%len(st.latent)]
		if _, err := m.Run(s, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11QualityPathsASAP regenerates ASAP's quality-path counts
// (Figures 11 and 12), one latent session per iteration.
func BenchmarkFig11QualityPathsASAP(b *testing.B) { benchMethodOnLatent(b, "ASAP") }

// BenchmarkFig11QualityPathsDEDI is the DEDI series of Figures 11/12.
func BenchmarkFig11QualityPathsDEDI(b *testing.B) { benchMethodOnLatent(b, "DEDI") }

// BenchmarkFig11QualityPathsRAND is the RAND series of Figures 11/12.
func BenchmarkFig11QualityPathsRAND(b *testing.B) { benchMethodOnLatent(b, "RAND") }

// BenchmarkFig11QualityPathsMIX is the MIX series of Figures 11/12.
func BenchmarkFig11QualityPathsMIX(b *testing.B) { benchMethodOnLatent(b, "MIX") }

// BenchmarkFig13ShortestRTTOPT regenerates OPT's shortest-RTT series
// (Figures 13 and 14): one offline-optimal search per iteration.
func BenchmarkFig13ShortestRTTOPT(b *testing.B) { benchMethodOnLatent(b, "OPT") }

// BenchmarkFig15MOS regenerates the MOS scoring of Figures 15/16 over
// the latent workload.
func BenchmarkFig15MOS(b *testing.B) {
	st := benchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range st.latent {
			if rtt, ok := st.world.DirectRTT(s); ok {
				_ = netmodel.MOSFromRTT(rtt, eval.EvalLossRate, netmodel.CodecG729A)
			}
			_ = s
		}
	}
}

// BenchmarkFig17Scalability runs ASAP selection in the 2x-population
// world (Figure 17's scaled arm).
func BenchmarkFig17Scalability(b *testing.B) {
	st := scaledWorld(b)
	if len(st.latent) == 0 {
		b.Skip("no latent sessions in scaled world")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := st.latent[i%len(st.latent)]
		if _, err := st.sys.SelectCloseRelay(s.A, s.B); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig18Overhead measures the message-accounting path of
// Figure 18: a full ASAP selection with counters, per iteration.
func BenchmarkFig18Overhead(b *testing.B) {
	st := benchWorld(b)
	b.ResetTimer()
	var msgs int64
	for i := 0; i < b.N; i++ {
		s := st.latent[i%len(st.latent)]
		sel, err := st.sys.SelectCloseRelay(s.A, s.B)
		if err != nil {
			b.Fatal(err)
		}
		msgs += sel.Messages
	}
	if b.N > 0 {
		b.ReportMetric(float64(msgs)/float64(b.N), "msgs/session")
	}
}

// --- Ablations and substrate micro-benchmarks ---

// BenchmarkCloseSetK ablates the valley-free BFS bound K (the paper
// argues K=4 suffices; larger K probes more for little gain).
func BenchmarkCloseSetK(b *testing.B) {
	for _, k := range []int{2, 4, 6} {
		k := k
		b.Run(map[int]string{2: "K2", 4: "K4", 6: "K6"}[k], func(b *testing.B) {
			st := benchWorld(b)
			params := asap.DefaultParams()
			params.K = k
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sys, err := asap.NewSystem(st.world, params)
				if err != nil {
					b.Fatal(err)
				}
				cid := st.world.Pop.Host(st.latent[i%len(st.latent)].A).Cluster
				b.StartTimer()
				if _, err := sys.CloseSet(cid); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSelectRelayTwoHop ablates two-hop expansion: sizeT=0 disables
// it (one-hop only), the default 300 enables it for sparse sessions.
func BenchmarkSelectRelayTwoHop(b *testing.B) {
	for _, sizeT := range []int{0, 300} {
		name := "disabled"
		if sizeT > 0 {
			name = "sizeT300"
		}
		sizeT := sizeT
		b.Run(name, func(b *testing.B) {
			st := benchWorld(b)
			params := asap.DefaultParams()
			params.SizeT = sizeT
			sys, err := asap.NewSystem(st.world, params)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := st.latent[i%len(st.latent)]
				if _, err := sys.SelectCloseRelay(s.A, s.B); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkValleyFreeBFS measures the close-set search primitive.
func BenchmarkValleyFreeBFS(b *testing.B) {
	st := benchWorld(b)
	g := st.world.Graph
	asns := g.ASNs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := g.ValleyFreeBFS(asns[i%len(asns)], 4)
		if len(r.Hops) == 0 {
			b.Fatal("empty reach")
		}
	}
}

// BenchmarkPolicyRouteTable measures one BGP-style table construction.
func BenchmarkPolicyRouteTable(b *testing.B) {
	st := benchWorld(b)
	g := st.world.Graph
	asns := g.ASNs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.BuildRouteTable(asns[i%len(asns)]) == nil {
			b.Fatal("nil table")
		}
	}
}

// BenchmarkTrieLookup measures longest-prefix matching.
func BenchmarkTrieLookup(b *testing.B) {
	st := benchWorld(b)
	trie := st.world.Alloc.BuildTrie()
	hosts := st.world.Pop.Hosts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := trie.Lookup(hosts[i%len(hosts)].Addr); !ok {
			b.Fatal("lookup miss")
		}
	}
}

// BenchmarkEModelMOS measures the G.107 computation.
func BenchmarkEModelMOS(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mos := netmodel.MOSFromRTT(time.Duration(i%400)*time.Millisecond, 0.005, netmodel.CodecG729A)
		if mos < 1 || mos > 4.5 {
			b.Fatal("MOS out of range")
		}
	}
}

// BenchmarkGaoInference measures relationship inference over a synthetic
// RIB's paths.
func BenchmarkGaoInference(b *testing.B) {
	rng := sim.NewRNG(7)
	g, err := asgraph.Generate(asgraph.DefaultGenConfig(300), rng)
	if err != nil {
		b.Fatal(err)
	}
	alloc, err := bgp.Allocate(g, bgp.DefaultAllocConfig(), rng)
	if err != nil {
		b.Fatal(err)
	}
	router := asgraph.NewRouter(g, 0)
	asns := g.ASNs()
	var vas []asgraph.ASN
	for _, i := range rng.Sample(len(asns), 6) {
		vas = append(vas, asns[i])
	}
	paths := bgp.Paths(bgp.SynthesizeRIB(router, alloc, vas))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if edges := asgraph.InferRelationships(paths, asgraph.InferConfig{}); len(edges) == 0 {
			b.Fatal("no edges inferred")
		}
	}
}

// BenchmarkOverlayOneHop measures single relay-path evaluation, the inner
// loop of every selection method.
func BenchmarkOverlayOneHop(b *testing.B) {
	st := benchWorld(b)
	eng := overlay.NewEngine(st.world.Model)
	s := st.latent[0]
	pop := st.world.Pop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := cluster.HostID(i % pop.NumHosts())
		_, _ = eng.OneHop(s.A, r, s.B)
	}
}

// benchSessionDriver serves constant measurements: the backups beat the
// active path by more than the switch margin, so hysteresis streaks
// build continuously and a switchover fires every SwitchConsecutive
// ticks — the full monitor decision path.
type benchSessionDriver struct{}

func (benchSessionDriver) ProbePath(relay, callee transport.Addr) (time.Duration, float64, error) {
	if relay == "slow" {
		return 350 * time.Millisecond, 0.05, nil
	}
	return 120 * time.Millisecond, 0.005, nil
}

func (benchSessionDriver) Keepalive(target transport.Addr, flowID uint64) error { return nil }

// BenchmarkSessionSwitchover measures one virtual-clock event of the
// session monitor loop: probe the active path and backups, E-Model score
// them, update hysteresis streaks, and switch when a backup qualifies.
func BenchmarkSessionSwitchover(b *testing.B) {
	clk := &sim.Clock{}
	mgr, err := session.NewManager(session.DefaultConfig(), clk, benchSessionDriver{})
	if err != nil {
		b.Fatal(err)
	}
	defer mgr.Close()
	sess, err := mgr.Open("callee",
		session.Candidate{Relay: "slow", Est: 350 * time.Millisecond},
		[]session.Candidate{
			{Relay: "fast1", Est: 120 * time.Millisecond},
			{Relay: "fast2", Est: 125 * time.Millisecond},
			{Relay: "fast3", Est: 130 * time.Millisecond},
		}, 1)
	if err != nil {
		b.Fatal(err)
	}
	mgr.Start()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !clk.Step() {
			b.Fatal("monitor loop drained the clock")
		}
	}
	b.StopTimer()
	if sess.Switches() == 0 && b.N > 10 {
		b.Fatal("no switchover exercised")
	}
}

// BenchmarkTransportMem measures an in-memory protocol round trip.
func BenchmarkTransportMem(b *testing.B) {
	mem := transport.NewMem()
	defer func() { _ = mem.Close() }()
	if _, err := mem.Serve("srv", func(_ transport.Addr, m *transport.Message) (*transport.Message, error) {
		return &transport.Message{Type: transport.MsgPong}, nil
	}); err != nil {
		b.Fatal(err)
	}
	req := &transport.Message{Type: transport.MsgPing, From: "cli"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mem.Call("srv", req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransportTCP measures a live binary-framed TCP protocol
// round trip on loopback (wire format: DESIGN.md §15).
func BenchmarkTransportTCP(b *testing.B) {
	tcp := transport.NewTCP()
	defer func() { _ = tcp.Close() }()
	addr, err := tcp.Serve("127.0.0.1:0", func(_ transport.Addr, m *transport.Message) (*transport.Message, error) {
		return &transport.Message{Type: transport.MsgPong}, nil
	})
	if err != nil {
		b.Fatal(err)
	}
	req := &transport.Message{Type: transport.MsgPing, From: "cli"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tcp.Call(addr, req); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel evaluation harness ---

// benchComparisonWorkers runs the full five-method comparison over the
// latent workload with a fixed worker count. The sub-seeded per-session
// RNGs make the output identical for every count, so serial vs parallel
// is a pure wall-clock comparison.
func benchComparisonWorkers(b *testing.B, workers int) {
	st := benchWorld(b)
	methods := []eval.Method{
		st.methods["DEDI"], st.methods["RAND"], st.methods["MIX"],
		st.methods["ASAP"], st.methods["OPT"],
	}
	latent := st.latent
	if len(latent) > 40 {
		latent = latent[:40]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := eval.RunComparison(methods, latent, st.world.Profile.Seed, workers)
		if len(c.Order) != len(methods) {
			b.Fatal("comparison lost a method")
		}
	}
}

// BenchmarkComparisonSerial is the single-worker baseline for the
// parallel-evaluation speedup measurement.
func BenchmarkComparisonSerial(b *testing.B) { benchComparisonWorkers(b, 1) }

// BenchmarkComparisonParallel runs the same workload on all CPUs; the
// ratio to BenchmarkComparisonSerial is the harness speedup.
func BenchmarkComparisonParallel(b *testing.B) { benchComparisonWorkers(b, 0) }

// benchRoutingStudyWorkers sweeps the Section 3 routing study with a
// fixed worker count.
func benchRoutingStudyWorkers(b *testing.B, workers int) {
	st := benchWorld(b)
	sessions := st.sess
	if len(sessions) > 600 {
		sessions = sessions[:600]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := eval.RunRoutingStudy(st.world, sessions, 60, netmodel.QualityRTT, 0, workers)
		if len(r.DirectMs) == 0 {
			b.Fatal("empty routing study")
		}
	}
}

// BenchmarkRoutingStudySerial is the single-worker routing-study
// baseline.
func BenchmarkRoutingStudySerial(b *testing.B) { benchRoutingStudyWorkers(b, 1) }

// BenchmarkRoutingStudyParallel runs the routing study on all CPUs.
func BenchmarkRoutingStudyParallel(b *testing.B) { benchRoutingStudyWorkers(b, 0) }

// BenchmarkChurnVirtualTime runs the full two-arm churn experiment —
// five live nodes, a bootstrap outage, a surrogate kill and 40 calls
// per arm — entirely on the virtual clock. One iteration covers tens
// of seconds of protocol time; ns/op IS the wall-clock cost the
// `bench-virtualtime` target tracks (results/BENCH_virtualtime.md).
func BenchmarkChurnVirtualTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := eval.RunChurn(eval.DefaultChurnConfig())
		if err != nil {
			b.Fatal(err)
		}
		if res.Lease.Completed == 0 {
			b.Fatal("churn arm completed no calls")
		}
	}
}

// BenchmarkStabilizationVirtualTime runs both stabilization arms (a
// 60 s session horizon each) under the virtual clock; see
// BenchmarkChurnVirtualTime for how the number is used.
func BenchmarkStabilizationVirtualTime(b *testing.B) {
	paths := []eval.PathGround{
		{Relay: "r0", RTT: 110 * time.Millisecond, Loss: 0.005},
		{Relay: "r1", RTT: 140 * time.Millisecond, Loss: 0.005},
		{Relay: "r2", RTT: 320 * time.Millisecond, Loss: 0.03},
		{Relay: "r3", RTT: 380 * time.Millisecond, Loss: 0.04},
	}
	for i := 0; i < b.N; i++ {
		res, err := eval.RunStabilization(eval.DefaultStabilizationConfig(paths))
		if err != nil {
			b.Fatal(err)
		}
		if res.ASAP.DetectAfter < 0 {
			b.Fatal("stabilization arm never detected the failure")
		}
	}
}
